package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// The partition-aware lowering path of the parallel backend. A graph is
// split once (per graph, cached) into K cache-sized shards by
// shard.Partition; aggregation kernels then execute shard-at-a-time with
// worker-to-shard affinity: workers claim whole shards off an atomic
// cursor, so each shard's sub-CSR, id map and partial buffer stay with one
// worker for the duration of the shard.
//
// Because shards own the incoming edges of their owned vertices, every
// output row has exactly one producing shard and the two execution shapes
// are conflict-free by construction:
//
//   - vertex-parallel strategies walk the shard's local CSR and write owned
//     global rows directly (owner-per-row discipline);
//   - edge-parallel strategies run the two-level reduction: level 1 reduces
//     the shard's edges into its private partial slice (compact local
//     indexing, |owned| x feat — the whole level-1 working set of a shard
//     is partial + halo rows), level 2 folds the partial into the owned
//     global rows with the same mergeRow machinery the flat backend uses,
//     plus the zero-degree and mean fixups. Shard partials are disjoint
//     slices of one scratch block, carved at Lower time so the steady state
//     allocates nothing; determinism follows from row ownership plus the
//     CSR-ordered level-1 walk, independent of worker count or claim order.

// shardPlanCache memoises verified shard plans per (graph, requested count):
// a compiled model program lowers several kernels against the same graph,
// and partitioning is the expensive part. Bounded defensively; the bound is
// far above what a process compiling a handful of graphs reaches.
var (
	shardPlanMu    sync.Mutex
	shardPlanCache = map[shardPlanKey]*shard.Plan{}
)

type shardPlanKey struct {
	g *graph.Graph
	k int
}

const shardPlanCacheMax = 64

// shardPlanFor returns the memoised plan for (g, k), partitioning and
// verifying on first use. Errors are not cached: a corrupted-plan rejection
// (fault injection) must not poison later lowers.
func shardPlanFor(g *graph.Graph, k int) (*shard.Plan, error) {
	shardPlanMu.Lock()
	defer shardPlanMu.Unlock()
	key := shardPlanKey{g: g, k: k}
	if p, ok := shardPlanCache[key]; ok {
		return p, nil
	}
	p, err := shard.Partition(g, k)
	if err != nil {
		return nil, err
	}
	if len(shardPlanCache) >= shardPlanCacheMax {
		shardPlanCache = map[shardPlanKey]*shard.Plan{}
	}
	shardPlanCache[key] = p
	return p, nil
}

// ShardedLowering is implemented by lowered kernels that execute over a
// shard plan. The program compiler uses it to report partition shape in its
// stats and to rebind the per-shard scratch of all of a program's kernels
// onto one shared block (steps run sequentially, so sharing is safe and
// caps the program's shard-scratch footprint at the largest kernel's).
type ShardedLowering interface {
	// ShardCount reports how many shards the kernel executes over.
	ShardCount() int
	// ShardEdgeCut reports the plan's cross-shard edge fraction.
	ShardEdgeCut() float64
	// ShardScratchFloats reports the float32 count of the kernel's partial
	// scratch (0 for vertex-parallel lowerings, which need none).
	ShardScratchFloats() int
	// BindShardScratch points the kernel's partials at buf, which must hold
	// at least ShardScratchFloats elements. The kernel re-initialises the
	// scratch every Run, so rebinding never leaks state between kernels.
	BindShardScratch(buf []float32)
}

// lowerSharded builds the partition-aware kernel for an aggregation plan.
// Only called with CKind == Dst_V and a plan of at least 2 shards.
func (b *ParallelBackend) lowerSharded(p *Plan, g *graph.Graph, o Operands, sp *shard.Plan, row fusedRow) (CompiledKernel, error) {
	gop := p.Op.GatherOp
	k := &shardedKernel{
		b: b, p: p, g: g, o: o,
		feat:      o.C.T.Cols,
		selA:      lowerRowSel(o.A),
		selB:      lowerRowSel(o.B),
		row:       row,
		sp:        sp,
		vertexPar: p.Schedule.Strategy.VertexParallel(),
		mean:      gop == ops.GatherMean,
		identity:  gop.Identity(),
		site:      kernelSite(p, b.Name(), g),
	}
	if !k.vertexPar {
		// Per-shard partial slices, carved from one block: shard s owns
		// scratch[offsets[s] : offsets[s] + |owned_s| * feat]. The offsets
		// sum to |V| * feat — versus workers * |V| * feat for the flat
		// edge-parallel path's per-worker partials.
		k.offsets = make([]int, sp.K)
		total := 0
		for i := range sp.Shards {
			k.offsets[i] = total
			total += sp.Shards[i].NumOwned() * k.feat
		}
		k.scratch = make([]float32, total)
	}
	// Span labels are precomputed so per-shard tracing allocates nothing at
	// Run time.
	k.labels = make([]string, sp.K)
	for s := range k.labels {
		k.labels[s] = fmt.Sprintf("%s shard %d/%d", opLabel(p), s, sp.K)
	}
	return k, nil
}

// shardedKernel is a Plan lowered onto a shard plan. Not safe for
// concurrent Run calls (shared scratch), like every host kernel.
type shardedKernel struct {
	b    *ParallelBackend
	p    *Plan
	g    *graph.Graph
	o    Operands
	feat int
	selA rowSel
	selB rowSel
	row  fusedRow
	sp   *shard.Plan

	vertexPar bool
	mean      bool
	identity  float32

	// scratch holds the per-shard partials of the two-level reduction;
	// offsets locates shard s's slice. Owned by the kernel unless the
	// program compiler rebound it onto a program-wide block.
	scratch []float32
	offsets []int

	// labels are the per-shard span names, precomputed at Lower.
	labels []string

	runs      int64
	shardsRun int64

	site *telemetry.KernelSite
}

// Plan implements CompiledKernel.
func (k *shardedKernel) Plan() *Plan { return k.p }

// Counters implements CompiledKernel.
func (k *shardedKernel) Counters() Counters {
	return Counters{
		Runs:    k.runs,
		Edges:   k.runs * int64(k.g.NumEdges()),
		Shards:  k.shardsRun,
		Workers: k.b.workers,
	}
}

// ShardCount implements ShardedLowering.
func (k *shardedKernel) ShardCount() int { return k.sp.K }

// ShardEdgeCut implements ShardedLowering.
func (k *shardedKernel) ShardEdgeCut() float64 { return k.sp.EdgeCut }

// ShardScratchFloats implements ShardedLowering.
func (k *shardedKernel) ShardScratchFloats() int { return len(k.scratch) }

// BindShardScratch implements ShardedLowering.
func (k *shardedKernel) BindShardScratch(buf []float32) {
	if n := len(k.scratch); n > 0 && len(buf) >= n {
		k.scratch = buf[:n]
	}
}

// Run implements CompiledKernel.
func (k *shardedKernel) Run() error { return k.RunCtx(context.Background()) }

// RunCtx implements CompiledKernel, with the same recovery and telemetry
// discipline as the flat parallel kernel: the End defer is registered first
// so it observes the panic already converted into err.
func (k *shardedKernel) RunCtx(ctx context.Context) (err error) {
	tstart := k.site.Begin()
	defer func() {
		oc, detail := outcomeOf(err)
		k.site.EndCtx(ctx, tstart, oc, detail, nil)
	}()
	defer func() {
		if r := recover(); r != nil {
			err = newKernelError(k.p, k.b.Name(), r, captureStack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := k.b.workers
	if int64(k.g.NumEdges())*int64(k.feat) < smallWork {
		workers = 1
	}
	if err := k.runShards(ctx, workers); err != nil {
		return err
	}
	if err := finishRun(k.p, k.o.C.T); err != nil {
		return err
	}
	k.runs++
	return nil
}

// runShards executes every shard once, dealing whole shards to workers off
// an atomic cursor (worker-to-shard affinity). Cancellation is checked at
// shard claims; worker panics recover into a *KernelError. The
// single-worker, no-deadline path is a plain loop so the steady state stays
// allocation-free.
func (k *shardedKernel) runShards(ctx context.Context, workers int) error {
	n := k.sp.K
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	if workers <= 1 {
		for s := 0; s < n; s++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			faultinject.MaybeSleep(faultinject.SlowChunk)
			faultinject.MaybePanic(faultinject.KernelPanic)
			faultinject.MaybePanic(faultinject.KernelPanicLoad)
			k.execShard(int32(s))
			k.shardsRun++
		}
		return nil
	}

	var cursor atomic.Int64
	var shards atomic.Int64
	var stop atomic.Bool
	var pc panicCell
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pc.record(r)
					stop.Store(true)
				}
			}()
			for !stop.Load() {
				if done != nil {
					select {
					case <-done:
						stop.Store(true)
						return
					default:
					}
				}
				s := cursor.Add(1) - 1
				if s >= int64(n) {
					return
				}
				faultinject.MaybeSleep(faultinject.SlowChunk)
				faultinject.MaybePanic(faultinject.KernelPanic)
			faultinject.MaybePanic(faultinject.KernelPanicLoad)
				k.execShard(int32(s))
				shards.Add(1)
			}
		}()
	}
	wg.Wait()
	k.shardsRun += shards.Load()
	if r, stack := pc.get(); r != nil {
		return newKernelError(k.p, k.b.Name(), r, stack)
	}
	return ctx.Err()
}

// execShard runs one shard end to end, under a per-shard span when
// telemetry is armed.
func (k *shardedKernel) execShard(s int32) {
	if telemetry.Enabled() {
		sp := telemetry.StartSpan(k.b.Name(), "shard", k.labels[s])
		defer sp.End()
	}
	sh := &k.sp.Shards[s]
	if k.vertexPar {
		k.vertexShard(sh)
	} else {
		k.edgeShard(sh)
	}
}

// vertexShard mirrors the thread-vertex / warp-vertex kernels over one
// shard: walk the local CSR, resolve global ids through L2G, accumulate
// into the owned global row directly. One owner per row, so no partials.
func (k *shardedKernel) vertexShard(sh *shard.Shard) {
	out := k.o.C.T
	for i := range sh.Owned {
		v := sh.Owned[i]
		row := out.Row(int(v))
		lo, hi := sh.Ptr[i], sh.Ptr[i+1]
		if lo == hi {
			for j := range row {
				row[j] = 0 // zero-degree convention (DGL)
			}
			continue
		}
		for j := range row {
			row[j] = k.identity
		}
		for x := lo; x < hi; x++ {
			e := sh.Edge[x]
			u := sh.L2G[sh.Src[x]]
			k.row(row, k.selA(e, u, v), k.selB(e, u, v))
		}
		if k.mean {
			inv := 1 / float32(hi-lo)
			for j := range row {
				row[j] *= inv
			}
		}
	}
}

// edgeShard is the two-level reduction for the edge-parallel strategies.
// Level 1 reduces the shard's edges into its private partial slice using
// compact local row indexing; level 2 folds the partial into the owned
// global rows (mergeRow, as in the flat backend's merge phase) and applies
// the zero-degree and mean fixups. Destination ownership makes level 2
// exclusive per row, so the fold order across shards cannot matter — the
// canonical MergeOrder the verifier pins is trivially respected.
func (k *shardedKernel) edgeShard(sh *shard.Shard) {
	out := k.o.C.T
	feat := k.feat
	gop := k.p.Op.GatherOp
	nOwned := len(sh.Owned)
	buf := k.scratch[k.offsets[sh.ID] : k.offsets[sh.ID]+nOwned*feat]
	for i := range buf {
		buf[i] = k.identity
	}
	for i := 0; i < nOwned; i++ {
		v := sh.Owned[i]
		row := buf[i*feat : i*feat+feat]
		for x := sh.Ptr[i]; x < sh.Ptr[i+1]; x++ {
			e := sh.Edge[x]
			u := sh.L2G[sh.Src[x]]
			k.row(row, k.selA(e, u, v), k.selB(e, u, v))
		}
	}
	for i := 0; i < nOwned; i++ {
		v := sh.Owned[i]
		row := out.Row(int(v))
		deg := sh.Ptr[i+1] - sh.Ptr[i]
		if deg == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		for j := range row {
			row[j] = k.identity
		}
		mergeRow(gop, row, buf[i*feat:i*feat+feat])
		if k.mean {
			inv := 1 / float32(deg)
			for j := range row {
				row[j] *= inv
			}
		}
	}
}
