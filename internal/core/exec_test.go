package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// testGraph builds a deterministic random graph with some skew and some
// zero-degree vertices.
func testGraph(t testing.TB, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		src := int32(rng.Intn(n))
		// Skew destinations: half the edges land in the first quarter.
		var dst int32
		if rng.Float64() < 0.5 {
			dst = int32(rng.Intn(n/4 + 1))
		} else {
			dst = int32(rng.Intn(n))
		}
		b.AddEdge(src, dst)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// makeOperands allocates random inputs and an output for op over g.
func makeOperands(g *graph.Graph, op ops.OpInfo, feat int, widthOneB bool, seed int64) Operands {
	rng := rand.New(rand.NewSource(seed))
	alloc := func(kind tensor.Kind, cols int) tensor.Typed {
		if kind == tensor.Null {
			return tensor.NullTensor
		}
		rows := g.NumVertices()
		if kind == tensor.EdgeK {
			rows = g.NumEdges()
		}
		d := tensor.NewDense(rows, cols)
		d.FillRandom(rng, 1)
		return tensor.Typed{Kind: kind, T: d}
	}
	bCols := feat
	if widthOneB {
		bCols = 1
	}
	o := Operands{
		A: alloc(op.AKind, feat),
		B: alloc(op.BKind, bCols),
	}
	outRows := g.NumVertices()
	if op.CKind == tensor.EdgeK {
		outRows = g.NumEdges()
	}
	o.C = tensor.Typed{Kind: op.CKind, T: tensor.NewDense(outRows, feat)}
	return o
}

var testOps = []struct {
	name      string
	op        ops.OpInfo
	widthOneB bool
}{
	{"aggr_sum", ops.AggrSum, false},
	{"aggr_max", ops.AggrMax, false},
	{"aggr_mean", ops.AggrMean, false},
	{"weighted_aggr_sum", ops.WeightedAggrSum, true},
	{"u_add_v_msgc", ops.UAddV, false},
	{"copy_u_msgc", ops.CopyU, false},
	{"copy_e_sum", ops.CopyESum, false},
	{"e_div_v", ops.EDivV, false},
}

// TestAllSchedulesMatchReference is the central correctness property: every
// (strategy, group, tile) combination computes the same result as the
// canonical Fig. 5 nested loop, for every operator family.
func TestAllSchedulesMatchReference(t *testing.T) {
	g := testGraph(t, 200, 1500, 42)
	schedules := []Schedule{
		{ThreadVertex, 1, 1}, {ThreadEdge, 1, 1}, {WarpVertex, 1, 1}, {WarpEdge, 1, 1},
		{ThreadVertex, 4, 2}, {ThreadEdge, 8, 4}, {WarpVertex, 2, 8}, {WarpEdge, 16, 2},
		{ThreadEdge, 64, 32}, {WarpVertex, 1, 64},
	}
	for _, tc := range testOps {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			feat := 24
			ref := makeOperands(g, tc.op, feat, tc.widthOneB, 7)
			if err := Reference(g, tc.op, ref); err != nil {
				t.Fatal(err)
			}
			for _, sched := range schedules {
				got := makeOperands(g, tc.op, feat, tc.widthOneB, 7)
				p, err := Compile(tc.op, sched)
				if err != nil {
					t.Fatalf("%v: %v", sched, err)
				}
				if err := p.Execute(g, got); err != nil {
					t.Fatalf("%v: %v", sched, err)
				}
				if !got.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
					t.Errorf("%v: output differs from reference (maxdiff %v)",
						sched, got.C.T.MaxDiff(ref.C.T))
				}
			}
		})
	}
}

func TestZeroDegreeVerticesOutputZero(t *testing.T) {
	// Vertex 3 has no incoming edges.
	g, err := graph.FromCOO(4, []int32{0, 1, 2}, []int32{1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []ops.OpInfo{ops.AggrSum, ops.AggrMax, ops.AggrMean} {
		for _, strat := range Strategies {
			o := makeOperands(g, op, 4, false, 3)
			p := MustCompile(op, Schedule{strat, 1, 1})
			if err := p.Execute(g, o); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 4; j++ {
				if o.C.T.At(3, j) != 0 {
					t.Errorf("%s/%s: zero-degree vertex got %v, want 0",
						op.Name, strat, o.C.T.At(3, j))
				}
			}
		}
	}
}

func TestAggrSumKnownValues(t *testing.T) {
	// 0->2, 1->2 with features [1,2] and [10,20]: vertex 2 sums to [11,22].
	g, err := graph.FromCOO(3, []int32{0, 1}, []int32{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice(3, 2, []float32{1, 2, 10, 20, 100, 200})
	out := tensor.NewDense(3, 2)
	o := Operands{A: tensor.Src(x), B: tensor.NullTensor, C: tensor.Dst(out)}
	if err := Reference(g, ops.AggrSum, o); err != nil {
		t.Fatal(err)
	}
	if out.At(2, 0) != 11 || out.At(2, 1) != 22 {
		t.Errorf("vertex 2 = [%v %v], want [11 22]", out.At(2, 0), out.At(2, 1))
	}
	if out.At(0, 0) != 0 || out.At(1, 1) != 0 {
		t.Error("sourceless vertices should be 0")
	}
}

func TestAggrMeanKnownValues(t *testing.T) {
	g, err := graph.FromCOO(3, []int32{0, 1}, []int32{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice(3, 1, []float32{4, 8, 0})
	out := tensor.NewDense(3, 1)
	o := Operands{A: tensor.Src(x), B: tensor.NullTensor, C: tensor.Dst(out)}
	p := MustCompile(ops.AggrMean, Schedule{ThreadEdge, 1, 1})
	if err := p.Execute(g, o); err != nil {
		t.Fatal(err)
	}
	if out.At(2, 0) != 6 {
		t.Errorf("mean = %v, want 6", out.At(2, 0))
	}
}

func TestWeightedAggrSumBroadcast(t *testing.T) {
	// Edge weights are width-1 and broadcast across two feature columns.
	g, err := graph.FromCOO(2, []int32{0, 0}, []int32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice(2, 2, []float32{3, 5, 0, 0})
	w := tensor.FromSlice(2, 1, []float32{2, 10})
	out := tensor.NewDense(2, 2)
	o := Operands{A: tensor.Src(x), B: tensor.Edge(w), C: tensor.Dst(out)}
	if err := Reference(g, ops.WeightedAggrSum, o); err != nil {
		t.Fatal(err)
	}
	// dst 1 = 3*2 + 3*10 = 36 in col 0; 5*2 + 5*10 = 60 in col 1.
	if out.At(1, 0) != 36 || out.At(1, 1) != 60 {
		t.Errorf("got [%v %v], want [36 60]", out.At(1, 0), out.At(1, 1))
	}
}

func TestMessageCreationUAddV(t *testing.T) {
	g, err := graph.FromCOO(2, []int32{0}, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice(2, 1, []float32{3, 4})
	y := tensor.FromSlice(2, 1, []float32{10, 20})
	out := tensor.NewDense(1, 1)
	o := Operands{A: tensor.Src(x), B: tensor.Typed{Kind: tensor.DstV, T: y}, C: tensor.Edge(out)}
	if err := Reference(g, ops.UAddV, o); err != nil {
		t.Fatal(err)
	}
	// edge 0: src=0 dst=1: x[0] + y[1] = 3 + 20.
	if out.At(0, 0) != 23 {
		t.Errorf("got %v, want 23", out.At(0, 0))
	}
}

func TestExecuteRejectsBadOperands(t *testing.T) {
	g := testGraph(t, 10, 30, 1)
	p := MustCompile(ops.AggrSum, DefaultSchedule)
	good := makeOperands(g, ops.AggrSum, 4, false, 1)

	bad := good
	bad.A = tensor.NullTensor
	if err := p.Execute(g, bad); err == nil {
		t.Error("kind mismatch should fail")
	}
	bad = good
	bad.C = tensor.Typed{Kind: tensor.DstV, T: tensor.NewDense(g.NumVertices()+1, 4)}
	if err := p.Execute(g, bad); err == nil {
		t.Error("row mismatch should fail")
	}
	bad = good
	bad.A = tensor.Src(tensor.NewDense(g.NumVertices(), 3)) // neither 4 nor 1
	if err := p.Execute(g, bad); err == nil {
		t.Error("width mismatch should fail")
	}
	bad = good
	bad.C = tensor.Typed{Kind: tensor.DstV}
	if err := p.Execute(g, bad); err == nil {
		t.Error("missing output should fail")
	}
}

func TestExecuteEmptyGraph(t *testing.T) {
	g, err := graph.FromCOO(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := Operands{
		A: tensor.Src(tensor.NewDense(0, 4)),
		B: tensor.NullTensor,
		C: tensor.Dst(tensor.NewDense(0, 4)),
	}
	if err := Reference(g, ops.AggrSum, o); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureWidthOne(t *testing.T) {
	// F=1 exercises the sub-line chunk path in every schedule.
	g := testGraph(t, 50, 300, 9)
	ref := makeOperands(g, ops.AggrSum, 1, false, 2)
	if err := Reference(g, ops.AggrSum, ref); err != nil {
		t.Fatal(err)
	}
	for _, strat := range Strategies {
		got := makeOperands(g, ops.AggrSum, 1, false, 2)
		p := MustCompile(ops.AggrSum, Schedule{strat, 2, 2})
		if err := p.Execute(g, got); err != nil {
			t.Fatal(err)
		}
		if !got.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
			t.Errorf("%s: F=1 mismatch", strat)
		}
	}
}
