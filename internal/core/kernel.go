package core

import (
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// This file projects a compiled Plan as a gpu.Kernel: the performance-model
// view of the generated kernel. One model per basic strategy encodes the
// mapping of Fig. 6 — which hardware unit owns which work item, how the
// feature dimension is split, where coalescing succeeds and where atomics
// serialise. DESIGN.md §4 describes the two granularities (exact BlockWork,
// sampled TraceBlock).
//
// Address space: each operand and graph index array gets its own 1 GiB
// segment so lines never alias across arrays.

const (
	segA = iota
	segB
	segC
	segInPtr
	segInSrc
	segInEdges
	segEdgeSrc
	segEdgeDst
)

const segmentBytes = int64(1) << 30

// Instruction-cost constants for the work model. Exposed as named constants
// so the ablation benches can reference what each knob costs.
const (
	// GroupLoopInsts is the per-item loop overhead added by V/E grouping.
	GroupLoopInsts = 3.0
	// TileAddrInsts is the per-chunk address arithmetic added by feature tiling.
	TileAddrInsts = 2.0
	// ItemSetupInsts covers per-item index loads and bounds checks.
	ItemSetupInsts = 4.0
	// VertexEpilogueInsts covers the register-accumulator writeback per
	// (vertex, chunk) in vertex-parallel strategies.
	VertexEpilogueInsts = 3.0
	// sectorService is how many 32-byte sectors the L1 serves per cycle: an
	// uncoalesced warp access over N distinct sectors costs N/sectorService
	// LSU cycles (a fully coalesced 128-byte access costs one).
	sectorService = 4.0
)

// operandDesc summarises how one operand is addressed by the model.
type operandDesc struct {
	kind tensor.Kind
	cols int // 0 = absent, 1 = broadcast scalar, else = feature width
	base int64
}

func (d operandDesc) present() bool { return d.kind != tensor.Null }

// row returns the tensor row this operand reads for (edge, src, dst).
func (d operandDesc) row(e, u, v int32) int32 {
	switch d.kind {
	case tensor.SrcV:
		return u
	case tensor.DstV:
		return v
	default:
		return e
	}
}

// line returns the cache line of element (row, elem) of this operand.
func (d operandDesc) line(row int32, elem int) int64 {
	return (d.base + (int64(row)*int64(d.cols)+int64(elem))*4) >> 7
}

// model is the shared state of all strategy kernels.
type model struct {
	plan *Plan
	g    *graph.Graph
	dev  *gpu.Device

	feat       int // F: output feature width
	featChunks int // ceil(F / elemsPerLine)
	elemsLast  int // elements in the final chunk

	a, b, c operandDesc

	items     int // V for vertex-parallel, E for edge-parallel
	numGroups int // ceil(items / Group)
	units     int // numGroups * Tile (threads or warps)

	// lineBuf is the scratch buffer reused across TraceBlock visits (not
	// concurrency-safe; the simulator replays blocks sequentially).
	// Deduplication is a linear scan — warp accesses touch at most 32
	// distinct lines, where scanning beats hashing.
	lineBuf []int64
}

func elemsPerLine(dev *gpu.Device) int { return dev.LineBytes / 4 }

// newModel builds the shared state. aCols/bCols give operand widths (1 for
// broadcast); feat is the output width.
func newModel(p *Plan, g *graph.Graph, feat, aCols, bCols int, dev *gpu.Device) *model {
	epl := elemsPerLine(dev)
	chunks := (feat + epl - 1) / epl
	if chunks == 0 {
		chunks = 1
	}
	last := feat - (chunks-1)*epl
	if last <= 0 {
		last = feat
	}
	m := &model{
		plan: p, g: g, dev: dev,
		feat: feat, featChunks: chunks, elemsLast: last,
		a:       operandDesc{kind: p.Op.AKind, cols: aCols, base: segA * segmentBytes},
		b:       operandDesc{kind: p.Op.BKind, cols: bCols, base: segB * segmentBytes},
		c:       operandDesc{kind: p.Op.CKind, cols: feat, base: segC * segmentBytes},
		lineBuf: make([]int64, 0, 64),
	}
	if p.Schedule.Strategy.VertexParallel() {
		m.items = g.NumVertices()
	} else {
		m.items = g.NumEdges()
	}
	gsz := p.Schedule.Group
	m.numGroups = (m.items + gsz - 1) / gsz
	m.units = m.numGroups * p.Schedule.Tile
	if m.units == 0 {
		m.units = 0
	}
	return m
}

// loadInstCounts returns (fullWidthInputs, scalarInputs): how many input
// operands are full feature width vs broadcast scalars. C is a store and
// charges no load latency.
func (m *model) loadInstCounts() (fw, sc float64) {
	for _, d := range []operandDesc{m.a, m.b} {
		if !d.present() {
			continue
		}
		if d.cols == 1 {
			sc++
		} else {
			fw++
		}
	}
	return fw, sc
}

// Footprint sums the bytes of every array the kernel touches: the three
// operand tensors and the graph index arrays its traversal reads.
func (m *model) Footprint() int64 {
	v := int64(m.g.NumVertices())
	e := int64(m.g.NumEdges())
	bytesOf := func(d operandDesc) int64 {
		if !d.present() {
			return 0
		}
		rows := v
		if d.kind == tensor.EdgeK {
			rows = e
		}
		return rows * int64(d.cols) * 4
	}
	total := bytesOf(m.a) + bytesOf(m.b) + bytesOf(m.c)
	if m.plan.Schedule.Strategy.VertexParallel() {
		total += (v + 1 + e) * 4 // inPtr + inSrc
		if m.c.kind == tensor.EdgeK {
			total += e * 4 // inEdges
		}
	} else {
		total += 2 * e * 4 // edgeSrc + edgeDst
	}
	return total
}

// tileChunks returns how many feature chunks tile t owns (chunks are dealt
// round-robin across tiles; tiles beyond the chunk count own none and are
// launched idle — the parallelism-waste side of over-tiling).
func (m *model) tileChunks(t int) int {
	if t >= m.featChunks {
		return 0
	}
	return (m.featChunks - t + m.plan.Schedule.Tile - 1) / m.plan.Schedule.Tile
}

// tileElems returns the feature elements tile t owns.
func (m *model) tileElems(t int) int {
	epl := elemsPerLine(m.dev)
	n := 0
	for c := t; c < m.featChunks; c += m.plan.Schedule.Tile {
		if c == m.featChunks-1 {
			n += m.elemsLast
		} else {
			n += epl
		}
	}
	return n
}

// unitSplit decomposes a unit id into (tile, first item, item count).
// Units are item-major: consecutive units cover consecutive item groups
// within the same tile, so warp lanes of thread strategies touch adjacent
// items.
func (m *model) unitSplit(unit int) (tile, firstItem, itemCount int) {
	tile = unit / m.numGroups
	groupIdx := unit % m.numGroups
	gsz := m.plan.Schedule.Group
	firstItem = groupIdx * gsz
	itemCount = gsz
	if firstItem+itemCount > m.items {
		itemCount = m.items - firstItem
	}
	if itemCount < 0 {
		itemCount = 0
	}
	return tile, firstItem, itemCount
}

// instsPerElem is the per-feature-element issue cost including tiling
// overhead amortised per chunk.
func (m *model) instsPerElem() float64 {
	insts := m.plan.InstsPerElement
	if m.plan.Schedule.Tile > 1 {
		insts += TileAddrInsts / float64(elemsPerLine(m.dev))
	}
	return insts
}

// perItemOverhead is the per-work-item setup cost including grouping loops.
func (m *model) perItemOverhead() float64 {
	o := ItemSetupInsts
	if m.plan.Schedule.Group > 1 {
		o += GroupLoopInsts
	}
	return o
}

// addLine appends a line, deduplicating within the current warp access.
func (m *model) addLine(line int64) {
	for _, l := range m.lineBuf {
		if l == line {
			return
		}
	}
	m.lineBuf = append(m.lineBuf, line)
}

// addLineDup appends without the dedup scan. Used for scattered per-lane
// feature reads in thread-mapped traces, where cross-lane line collisions
// are rare and a duplicate merely records an extra guaranteed cache hit.
func (m *model) addLineDup(line int64) {
	m.lineBuf = append(m.lineBuf, line)
}

// flushAccess emits the accumulated lines as one warp access and resets the
// scratch buffer.
func (m *model) flushAccess(atomic bool, visit func(gpu.WarpAccess)) {
	if len(m.lineBuf) == 0 {
		return
	}
	visit(gpu.WarpAccess{Lines: m.lineBuf, Atomic: atomic})
	m.lineBuf = m.lineBuf[:0]
}

// Kernel builds the gpu.Kernel for this plan over graph g with output width
// feat; aCols/bCols are operand widths (pass 1 for broadcast scalars, 0 or
// feat otherwise).
func (p *Plan) Kernel(g *graph.Graph, feat, aCols, bCols int, dev *gpu.Device) gpu.Kernel {
	m := newModel(p, g, feat, aCols, bCols, dev)
	switch p.Schedule.Strategy {
	case ThreadVertex, ThreadEdge:
		return &threadKernel{model: m}
	default:
		return &warpKernel{model: m}
	}
}

// KernelFor derives operand widths from actual operands and builds the kernel.
func (p *Plan) KernelFor(g *graph.Graph, o Operands, dev *gpu.Device) (gpu.Kernel, error) {
	feat, err := o.featureWidth()
	if err != nil {
		return nil, err
	}
	cols := func(t tensor.Typed) int {
		if t.Kind == tensor.Null || t.T == nil {
			return 0
		}
		return t.T.Cols
	}
	return p.Kernel(g, feat, cols(o.A), cols(o.B), dev), nil
}
