package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/faultinject"
	"repro/internal/ops"
	"repro/internal/shard"
	"repro/internal/tensor"
)

// TestShardedBackendFullRegistry is the sharded twin of the exhaustive
// backend-equivalence property: for EVERY (strategy x operator) pair, the
// partition-aware lowering over 6 shards matches the reference interpreter
// within 1e-4 — the acceptance bar the partitioning refactor must clear.
func TestShardedBackendFullRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := testGraphQuick(rng, 250, 2600)
	par := NewShardedParallelBackend(4, 6)
	feat := 13 // 2600 edges x 13 feats clears the small-work cutoff

	for _, entry := range ops.Registry() {
		op := entry.Info
		ref := positiveOperands(g, op, feat, rand.New(rand.NewSource(101)))
		if err := Reference(g, op, ref); err != nil {
			t.Fatalf("%s: reference: %v", entry.DGLName, err)
		}
		for _, strat := range Strategies {
			got := positiveOperands(g, op, feat, rand.New(rand.NewSource(101)))
			p, err := Compile(op, Schedule{Strategy: strat, Group: 1, Tile: 1})
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", entry.DGLName, strat, err)
			}
			k, err := par.Lower(p, g, got)
			if err != nil {
				t.Fatalf("%s/%s: lower: %v", entry.DGLName, strat, err)
			}
			if op.CKind == tensor.DstV {
				if _, ok := k.(ShardedLowering); !ok {
					t.Fatalf("%s/%s: aggregation did not take the sharded path", entry.DGLName, strat)
				}
			} else if _, ok := k.(ShardedLowering); ok {
				t.Fatalf("%s/%s: message creation must stay on the flat path", entry.DGLName, strat)
			}
			if err := k.Run(); err != nil {
				t.Fatalf("%s/%s: run: %v", entry.DGLName, strat, err)
			}
			if !got.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
				t.Errorf("%s/%s: sharded differs from reference (maxdiff %v)",
					entry.DGLName, strat, got.C.T.MaxDiff(ref.C.T))
			}
		}
	}
}

// TestShardedMatchesUnsharded compares the sharded and flat lowering of the
// same plans bit-for-bit-tolerantly across shard counts, including a count
// above the vertex count.
func TestShardedMatchesUnsharded(t *testing.T) {
	g := testGraph(t, 180, 2000, 11)
	const feat = 9
	for _, op := range []ops.OpInfo{ops.AggrSum, ops.AggrMax, ops.AggrMean, ops.WeightedAggrSum} {
		for _, strat := range Strategies {
			p := MustCompile(op, Schedule{Strategy: strat, Group: 1, Tile: 1})
			flat := makeOperands(g, op, feat, false, 5)
			k, err := NewShardedParallelBackend(3, 1).Lower(p, g, flat)
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 5, 64, 200} {
				o := makeOperands(g, op, feat, false, 5)
				sk, err := NewShardedParallelBackend(3, shards).Lower(p, g, o)
				if err != nil {
					t.Fatalf("%s/%s shards=%d: lower: %v", op, strat, shards, err)
				}
				if err := sk.Run(); err != nil {
					t.Fatalf("%s/%s shards=%d: run: %v", op, strat, shards, err)
				}
				if !o.C.T.AllClose(flat.C.T, 1e-4, 1e-4) {
					t.Errorf("%s/%s shards=%d: sharded != unsharded (maxdiff %v)",
						op, strat, shards, o.C.T.MaxDiff(flat.C.T))
				}
			}
		}
	}
}

// TestShardedRunDeterministic: repeated runs of one sharded kernel are
// bit-identical even with a worker pool racing over shard claims —
// destination ownership makes the result independent of claim order.
func TestShardedRunDeterministic(t *testing.T) {
	g := testGraph(t, 400, 9000, 3)
	const feat = 8
	op := ops.AggrSum
	p := MustCompile(op, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	o := makeOperands(g, op, feat, false, 2)
	k, err := NewShardedParallelBackend(8, 7).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	first := o.C.T.Clone()
	for rep := 0; rep < 5; rep++ {
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if !o.C.T.Equal(first) {
			t.Fatalf("rep %d differs from first run", rep)
		}
	}
}

// TestShardedLoweringInterface pins the program-compiler contract: shard
// count and edge cut are reported, edge-parallel lowerings expose their
// scratch, and rebinding the scratch onto a caller block keeps results
// correct.
func TestShardedLoweringInterface(t *testing.T) {
	g := testGraph(t, 300, 4000, 13)
	const feat = 12
	op := ops.AggrSum

	pe := MustCompile(op, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	o := makeOperands(g, op, feat, false, 7)
	k, err := NewShardedParallelBackend(2, 5).Lower(pe, g, o)
	if err != nil {
		t.Fatal(err)
	}
	sl, ok := k.(ShardedLowering)
	if !ok {
		t.Fatal("edge-parallel aggregation must be a ShardedLowering")
	}
	if sl.ShardCount() != 5 {
		t.Errorf("ShardCount = %d, want 5", sl.ShardCount())
	}
	if cut := sl.ShardEdgeCut(); cut <= 0 || cut > 1 {
		t.Errorf("ShardEdgeCut = %v, want in (0,1]", cut)
	}
	want := g.NumVertices() * feat
	if sl.ShardScratchFloats() != want {
		t.Errorf("ShardScratchFloats = %d, want %d (sum of owned x feat)", sl.ShardScratchFloats(), want)
	}
	ref := makeOperands(g, op, feat, false, 7)
	if err := Reference(g, op, ref); err != nil {
		t.Fatal(err)
	}
	sl.BindShardScratch(make([]float32, want+100))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Errorf("rebond scratch broke the kernel (maxdiff %v)", o.C.T.MaxDiff(ref.C.T))
	}
	// Undersized buffers must be refused, keeping the kernel on its own.
	sl.BindShardScratch(make([]float32, 1))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Error("undersized BindShardScratch corrupted the kernel")
	}

	// Vertex-parallel lowerings need no partials.
	pv := MustCompile(op, Schedule{Strategy: ThreadVertex, Group: 1, Tile: 1})
	o2 := makeOperands(g, op, feat, false, 7)
	k2, err := NewShardedParallelBackend(2, 5).Lower(pv, g, o2)
	if err != nil {
		t.Fatal(err)
	}
	if n := k2.(ShardedLowering).ShardScratchFloats(); n != 0 {
		t.Errorf("vertex-parallel scratch = %d, want 0", n)
	}
}

// TestShardedCounters: shard executions accumulate in Counters.Shards.
func TestShardedCounters(t *testing.T) {
	g := testGraph(t, 200, 3000, 5)
	op := ops.AggrSum
	p := MustCompile(op, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	o := makeOperands(g, op, 11, false, 3)
	k, err := NewShardedParallelBackend(4, 6).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	c := k.Counters()
	if c.Runs != 3 {
		t.Errorf("Runs = %d, want 3", c.Runs)
	}
	if c.Shards != 3*6 {
		t.Errorf("Shards = %d, want %d", c.Shards, 3*6)
	}
	if c.Edges != 3*int64(g.NumEdges()) {
		t.Errorf("Edges = %d, want %d", c.Edges, 3*g.NumEdges())
	}
}

// TestShardedCancellationAndPanic: the sharded runner honours context
// cancellation at shard claims and recovers worker panics into typed
// *KernelError values, like the flat runner.
func TestShardedCancellationAndPanic(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 1000, 20000, 7)
	op := ops.AggrSum
	p := MustCompile(op, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	o := makeOperands(g, op, 8, false, 9)
	k, err := NewShardedParallelBackend(4, 8).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if err := k.RunCtx(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunCtx = %v, want context.Canceled", err)
	}

	faultinject.Arm(faultinject.SlowChunk, faultinject.Spec{After: 1, Every: 1, Delay: 30 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	if err := k.RunCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow sharded kernel under deadline: %v, want DeadlineExceeded", err)
	}
	faultinject.Reset()

	faultinject.Arm(faultinject.KernelPanic, faultinject.Spec{After: 2})
	var ke *KernelError
	if err := k.Run(); !errors.As(err, &ke) {
		t.Fatalf("worker panic surfaced as %v, want *KernelError", err)
	} else if ke.Backend != "parallel" {
		t.Errorf("KernelError.Backend = %q", ke.Backend)
	}
	faultinject.Reset()

	// The kernel stays usable: the next run re-initialises partials and
	// matches the oracle.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ref := makeOperands(g, op, 8, false, 9)
	if err := Reference(g, op, ref); err != nil {
		t.Fatal(err)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Errorf("post-fault rerun differs from reference (maxdiff %v)", o.C.T.MaxDiff(ref.C.T))
	}
}

// TestShardedLowerRejectsCorruptPlan: an armed shard-plan corruption makes
// Lower fail with the violated rule — a wrong partition is unrepresentable
// as a lowered kernel. A fresh graph guarantees the plan cache cannot
// satisfy the lookup first.
func TestShardedLowerRejectsCorruptPlan(t *testing.T) {
	defer faultinject.Reset()
	g := testGraph(t, 500, 6000, 21)
	op := ops.AggrSum
	p := MustCompile(op, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	o := makeOperands(g, op, 8, false, 1)
	faultinject.Arm(faultinject.CorruptShardPlan, faultinject.Spec{After: 1, Seed: 0})
	_, err := NewShardedParallelBackend(2, 4).Lower(p, g, o)
	if err == nil {
		t.Fatal("Lower accepted a corrupted shard plan")
	}
	var ve *analysis.VerifyError
	if !errors.As(err, &ve) || !ve.HasRule(analysis.RuleShardEdgeCover) {
		t.Fatalf("Lower error = %v, want shard-edge-cover violation", err)
	}
	faultinject.Reset()
	// The failed partition is not cached: a clean Lower succeeds.
	if _, err := NewShardedParallelBackend(2, 4).Lower(p, g, o); err != nil {
		t.Fatalf("clean Lower after rejection: %v", err)
	}
}

// TestShardPlanCacheReuse: lowering several kernels against one graph
// partitions it once.
func TestShardPlanCacheReuse(t *testing.T) {
	g := testGraph(t, 400, 5000, 33)
	op := ops.AggrSum
	b := NewShardedParallelBackend(2, 4)
	before := shard.Stats().Partitions
	for _, strat := range Strategies {
		p := MustCompile(op, Schedule{Strategy: strat, Group: 1, Tile: 1})
		o := makeOperands(g, op, 6, false, 2)
		if _, err := b.Lower(p, g, o); err != nil {
			t.Fatal(err)
		}
	}
	if got := shard.Stats().Partitions - before; got != 1 {
		t.Errorf("lowering 4 kernels partitioned %d times, want 1", got)
	}
}

// TestShardedBackendDefaults: shard counts resolve through the same
// default/env plumbing the backend name uses.
func TestShardedBackendDefaults(t *testing.T) {
	if err := SetDefaultShards(3); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetDefaultShards(1); err != nil {
			t.Fatal(err)
		}
	}()
	if b := NewParallelBackend(2); b.Shards() != 3 {
		t.Errorf("NewParallelBackend shards = %d, want the default 3", b.Shards())
	}
	if err := SetDefaultShards(-1); err == nil {
		t.Error("SetDefaultShards(-1) should fail")
	}
	if err := SetDefaultShards(shard.MaxShards + 1); err == nil {
		t.Error("SetDefaultShards above MaxShards should fail")
	}
	t.Setenv("UGRAPHER_SHARDS", "9999999")
	if err := ValidateEnvShards(); err == nil {
		t.Error("ValidateEnvShards should reject 9999999")
	}
	t.Setenv("UGRAPHER_SHARDS", "banana")
	if err := ValidateEnvShards(); err == nil {
		t.Error("ValidateEnvShards should reject a non-integer")
	}
	t.Setenv("UGRAPHER_SHARDS", "0")
	if err := ValidateEnvShards(); err != nil {
		t.Errorf("ValidateEnvShards(0) = %v, want nil (auto)", err)
	}
}
