package core

import (
	"context"
	"fmt"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
)

// This file is the uGrapher API of the paper's Fig. 9:
//
//	uGrapher(graph_tensor, op_info, parallel_info)
//
// Run is the full call — compile, execute functionally, and simulate for
// metrics. Estimate skips functional execution (used by tuners, which only
// need predicted cost). When the caller passes no parallel_info, the paper's
// interface picks a strategy automatically; that lives in internal/schedule
// (grid search) and internal/predictor (learned model) to keep this package
// dependency-free.

// Result pairs the functional output (written into the C operand) with the
// simulated performance metrics.
type Result struct {
	Metrics gpu.Metrics
}

// Run executes the graph operator described by op on g with the given
// operands under schedule sched, computing on the default host backend and
// simulating on dev. The output is written into o.C.T; metrics are
// returned.
func Run(g *graph.Graph, op ops.OpInfo, o Operands, sched Schedule, dev *gpu.Device) (Result, error) {
	return RunWith(DefaultBackend(), g, op, o, sched, dev)
}

// RunCtx is Run with cancellation/deadline support.
func RunCtx(ctx context.Context, g *graph.Graph, op ops.OpInfo, o Operands, sched Schedule, dev *gpu.Device) (Result, error) {
	return RunWithCtx(ctx, DefaultBackend(), g, op, o, sched, dev)
}

// RunWith is Run with an explicit compute backend: the plan is lowered
// once (validating operands once), executed on b, and simulated on dev for
// the schedule-cost metrics.
func RunWith(b ExecBackend, g *graph.Graph, op ops.OpInfo, o Operands, sched Schedule, dev *gpu.Device) (Result, error) {
	return RunWithCtx(context.Background(), b, g, op, o, sched, dev)
}

// RunWithCtx is RunWith with cancellation: the compute pass honours ctx at
// the backend's cancellation granularity (chunk claims on the parallel
// backend). The simulation pass is not interruptible; it only runs after a
// successful compute pass.
func RunWithCtx(ctx context.Context, b ExecBackend, g *graph.Graph, op ops.OpInfo, o Operands, sched Schedule, dev *gpu.Device) (Result, error) {
	p, err := Compile(op, sched)
	if err != nil {
		return Result{}, err
	}
	ck, err := b.Lower(p, g, o)
	if err != nil {
		return Result{}, err
	}
	if err := ck.RunCtx(ctx); err != nil {
		return Result{}, err
	}
	k, err := p.KernelFor(g, o, dev)
	if err != nil {
		return Result{}, err
	}
	return Result{Metrics: gpu.Simulate(dev, k)}, nil
}

// Estimate simulates the operator's cost without computing outputs. feat is
// the output feature width; aCols/bCols are operand widths (1 = broadcast
// scalar, 0 = absent).
func Estimate(g *graph.Graph, op ops.OpInfo, feat, aCols, bCols int, sched Schedule, dev *gpu.Device, opts ...gpu.Option) (gpu.Metrics, error) {
	p, err := Compile(op, sched)
	if err != nil {
		return gpu.Metrics{}, err
	}
	k := p.Kernel(g, feat, aCols, bCols, dev)
	return gpu.Simulate(dev, k, opts...), nil
}

// OperandWidths derives (feat, aCols, bCols) from an operator and its
// natural widths: full-width vertex/edge features of width f, except that
// widthOneB marks B as a broadcast scalar (e.g. edge weights).
func OperandWidths(op ops.OpInfo, f int, widthOneB bool) (feat, aCols, bCols int) {
	feat = f
	if op.AKind != 0 {
		aCols = f
	}
	if op.BKind != 0 {
		bCols = f
		if widthOneB {
			bCols = 1
		}
	}
	return feat, aCols, bCols
}

// GenerateSource renders the plan as the CUDA-like kernel uGrapher's code
// generator would emit: the strategy template with the operator's device
// function inlined, fusion applied, and atomic or plain stores chosen by the
// analysis passes. It exists for inspection and documentation — the
// simulator consumes the Plan directly.
func (p *Plan) GenerateSource() string {
	op := p.Op
	s := p.Schedule
	name := op.Name
	if name == "" {
		name = "graph_op"
	}
	// Kernel names must be identifiers; operator labels may carry dots
	// (DGL-style "u_mul_e.sum").
	clean := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '.' || c == '-' || c == ' ' {
			c = '_'
		}
		clean = append(clean, c)
	}
	name = string(clean)

	load := func(d string, kind string) string {
		switch kind {
		case "Src_V":
			return d + "[src * F + f]"
		case "Dst_V":
			return d + "[dst * F + f]"
		case "Edge":
			return d + "[edge * F + f]"
		default:
			return "0.f"
		}
	}
	aExpr := load("A", op.AKind.String())
	bExpr := load("B", op.BKind.String())
	var edgeExpr string
	switch op.EdgeOp {
	case ops.CopyLHS:
		edgeExpr = aExpr
	case ops.CopyRHS, ops.EdgeNull:
		edgeExpr = bExpr
	case ops.EdgeAdd:
		edgeExpr = aExpr + " + " + bExpr
	case ops.EdgeSub:
		edgeExpr = aExpr + " - " + bExpr
	case ops.EdgeMul:
		edgeExpr = aExpr + " * " + bExpr
	case ops.EdgeDiv:
		edgeExpr = aExpr + " / " + bExpr
	}

	var body string
	outIdx := "dst * F + f"
	if op.CKind.String() == "Edge" {
		outIdx = "edge * F + f"
	}
	switch {
	case !op.GatherOp.IsReduction():
		body = fmt.Sprintf("C[%s] = %s;", outIdx, edgeExpr)
	case p.NeedsAtomic:
		switch op.GatherOp {
		case ops.GatherSum, ops.GatherMean:
			body = fmt.Sprintf("atomicAdd(&C[%s], %s);", outIdx, edgeExpr)
		case ops.GatherMax:
			body = fmt.Sprintf("atomicMax(&C[%s], %s);", outIdx, edgeExpr)
		default:
			body = fmt.Sprintf("atomicMin(&C[%s], %s);", outIdx, edgeExpr)
		}
	default:
		switch op.GatherOp {
		case ops.GatherSum, ops.GatherMean:
			body = fmt.Sprintf("acc[f] += %s;", edgeExpr)
		case ops.GatherMax:
			body = fmt.Sprintf("acc[f] = max(acc[f], %s);", edgeExpr)
		default:
			body = fmt.Sprintf("acc[f] = min(acc[f], %s);", edgeExpr)
		}
	}
	if !p.Fused {
		// Unfused form materialises the intermediate, as the pre-pass-1 code
		// would; shown for contrast when fusion is inapplicable.
		body = fmt.Sprintf("float edge_tmp = %s;\n        %s",
			edgeExpr, replaceExpr(body, edgeExpr, "edge_tmp"))
	}

	header := fmt.Sprintf(
		"// generated by uGrapher: op=%s schedule=%s fused=%v atomic=%v\n",
		op, s, p.Fused, p.NeedsAtomic)
	var template string
	switch s.Strategy {
	case ThreadVertex:
		template = `__global__ void %s_tv(...) {
  int t = blockIdx.x * blockDim.x + threadIdx.x;
  for (int dst = t*%d; dst < min(V, (t+1)*%d); ++dst) {
    for (int i = in_ptr[dst]; i < in_ptr[dst+1]; ++i) {
      int src = in_src[i], edge = in_edge[i];
      for (int f = tile_of(t); f < F; f += %d) {
        %s
      }
    }
  }
}`
	case ThreadEdge:
		template = `__global__ void %s_te(...) {
  int t = blockIdx.x * blockDim.x + threadIdx.x;
  for (int edge = t*%d; edge < min(E, (t+1)*%d); ++edge) {
    int src = edge_src[edge], dst = edge_dst[edge];
    for (int f = tile_of(t); f < F; f += %d) {
      %s
    }
  }
}`
	case WarpVertex:
		template = `__global__ void %s_wv(...) {
  int w = global_warp_id(); int lane = threadIdx.x %% 32;
  for (int dst = w*%d; dst < min(V, (w+1)*%d); ++dst) {
    for (int i = in_ptr[dst]; i < in_ptr[dst+1]; ++i) {
      int src = in_src[i], edge = in_edge[i];
      for (int f = chunk_of(w)*32 + lane; f < F; f += 32*%d) {
        %s
      }
    }
  }
}`
	default:
		template = `__global__ void %s_we(...) {
  int w = global_warp_id(); int lane = threadIdx.x %% 32;
  for (int edge = w*%d; edge < min(E, (w+1)*%d); ++edge) {
    int src = edge_src[edge], dst = edge_dst[edge];
    for (int f = chunk_of(w)*32 + lane; f < F; f += 32*%d) {
      %s
    }
  }
}`
	}
	return header + fmt.Sprintf(template, name, s.Group, s.Group, s.Tile, body)
}

func replaceExpr(body, from, to string) string {
	// Minimal single replacement for readability of the generated source.
	for i := 0; i+len(from) <= len(body); i++ {
		if body[i:i+len(from)] == from {
			return body[:i] + to + body[i+len(from):]
		}
	}
	return body
}
