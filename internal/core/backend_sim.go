package core

import (
	"context"

	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/telemetry"
)

// The sim backend: the GPU cycle simulator behind the ExecBackend
// interface. Lowering projects the plan as a gpu.Kernel (kernel.go); Run
// computes the functional output with the reference interpreter and then
// replays the kernel on the device model, recording simulated cycles in the
// counters. It is the source of schedule *cost*; the parallel backend is
// the source of fast functional *compute* — selecting "sim" gives correct
// outputs plus a per-run performance model, at interpreter speed.

// SimBackend wraps the cycle simulator for a fixed device.
type SimBackend struct {
	dev  *gpu.Device
	opts []gpu.Option
}

// NewSimBackend builds a simulator backend for dev (nil = V100). Options
// tune trace fidelity, e.g. gpu.WithMaxSampledBlocks.
func NewSimBackend(dev *gpu.Device, opts ...gpu.Option) *SimBackend {
	if dev == nil {
		dev = gpu.V100()
	}
	return &SimBackend{dev: dev, opts: opts}
}

// Name implements ExecBackend.
func (b *SimBackend) Name() string { return "sim" }

// Device returns the simulated device.
func (b *SimBackend) Device() *gpu.Device { return b.dev }

// Lower implements ExecBackend.
func (b *SimBackend) Lower(p *Plan, g *graph.Graph, o Operands) (ck CompiledKernel, err error) {
	sp := lowerSpan(b.Name(), p)
	defer func() { endLower(sp, err) }()
	ref, err := ReferenceBackend().Lower(p, g, o)
	if err != nil {
		return nil, err
	}
	// The wrapped compute kernel records through the sim kernel's site, not
	// its own: one logical run must produce one kernel record, and it should
	// carry the simulator metrics.
	if rk, ok := ref.(*refKernel); ok {
		rk.site = nil
	}
	gk, err := p.KernelFor(g, o, b.dev)
	if err != nil {
		return nil, err
	}
	return &simKernel{b: b, compute: ref, gk: gk, g: g, site: kernelSite(p, b.Name(), g)}, nil
}

type simKernel struct {
	b       *SimBackend
	compute CompiledKernel // reference interpreter for the functional output
	gk      gpu.Kernel
	g       *graph.Graph
	runs    int64
	metrics gpu.Metrics
	site    *telemetry.KernelSite
	// sample is reused across runs so the steady state allocates nothing.
	sample telemetry.SimSample
}

// Plan implements CompiledKernel.
func (k *simKernel) Plan() *Plan { return k.compute.Plan() }

// Run implements CompiledKernel: functional output plus a simulation pass.
func (k *simKernel) Run() error { return k.RunCtx(context.Background()) }

// RunCtx implements CompiledKernel: the functional pass delegates
// cancellation and panic recovery to the wrapped compute kernel; the
// simulation replay only happens after a successful compute pass.
func (k *simKernel) RunCtx(ctx context.Context) error {
	tstart := k.site.Begin()
	if err := k.compute.RunCtx(ctx); err != nil {
		oc, detail := outcomeOf(err)
		k.site.EndCtx(ctx, tstart, oc, detail, nil)
		return err
	}
	k.metrics = gpu.Simulate(k.b.dev, k.gk, k.b.opts...)
	k.runs++
	k.sample = telemetry.SimSample{
		Cycles:    k.metrics.Cycles,
		L1HitRate: k.metrics.L1HitRate,
		L2HitRate: k.metrics.L2HitRate,
	}
	k.site.EndCtx(ctx, tstart, telemetry.OutcomeOK, "", &k.sample)
	return nil
}

// Metrics returns the simulated metrics of the last Run.
func (k *simKernel) Metrics() gpu.Metrics { return k.metrics }

// Counters implements CompiledKernel.
func (k *simKernel) Counters() Counters {
	return Counters{
		Runs:      k.runs,
		Edges:     k.runs * int64(k.g.NumEdges()),
		Shards:    k.runs,
		Workers:   1,
		SimCycles: k.metrics.Cycles,
	}
}
