package core

import (
	"repro/internal/gpu"
	"repro/internal/tensor"
)

// threadKernel models the thread-vertex and thread-edge strategies: each
// thread owns Group work items and the full feature slice of its tile, so a
// warp's 32 lanes process 32 different items in lockstep. Consequences the
// model captures (paper §4.2):
//
//   - thread-vertex diverges when in-degrees differ across the 32 lanes: the
//     warp issues instructions for the longest lane (Fig. 2b's imbalance);
//   - feature reads are scattered across lanes (one transaction per lane per
//     chunk) — poor coalescing, the locality cost of thread mapping;
//   - thread-edge lanes share destination vertices (CSR edge order groups
//     them), so atomic reductions replay serially per duplicated dst.
type threadKernel struct {
	*model
	// laneState reused by lockstep traversal in TraceBlock.
	cursors [32]laneCursor
}

type laneCursor struct {
	active    bool
	tile      int
	item      int32 // current vertex (TV) — index into [first, first+count)
	itemEnd   int32
	edgePos   int32 // next in-edge offset within current vertex (TV)
	edgeCount int32
}

func (k *threadKernel) NumBlocks() int {
	tpb := k.dev.ThreadsPerBlock
	return (k.units + tpb - 1) / tpb
}

func (k *threadKernel) WarpsPerBlock() int { return k.dev.WarpsPerBlock() }

// laneUnits returns the number of live thread units in the warp starting at
// thread id base.
func (k *threadKernel) laneUnits(base int) int {
	n := k.units - base
	if n > k.dev.WarpSize {
		n = k.dev.WarpSize
	}
	if n < 0 {
		n = 0
	}
	return n
}

// seqLines estimates the distinct lines touched when `lanes` lanes access
// rows spaced `rowStride` rows apart in an array of `cols` columns, at one
// chunk (sequential-pattern coalescing: consecutive-ish rows share lines
// when rows are small).
func (k *threadKernel) seqLines(lanes, rowStride, cols int) float64 {
	if lanes == 0 {
		return 0
	}
	spanBytes := float64(lanes) * float64(rowStride) * float64(cols) * 4
	lines := spanBytes / float64(k.dev.LineBytes)
	if lines < 1 {
		lines = 1
	}
	if lines > float64(lanes) {
		lines = float64(lanes)
	}
	return lines
}

// scatteredLines estimates distinct lines for lanes reading random rows.
func (k *threadKernel) scatteredLines(lanes, cols int) float64 {
	if lanes == 0 {
		return 0
	}
	if cols == 1 {
		// 32 scalars share a line; random rows coalesce only by accident.
		l := float64(lanes) / 4
		if l < 1 {
			l = 1
		}
		return l
	}
	return float64(lanes)
}

func (k *threadKernel) BlockWork(b int) gpu.BlockWork {
	var w gpu.BlockWork
	tpb := k.dev.ThreadsPerBlock
	ws := k.dev.WarpSize
	for warp := 0; warp < k.WarpsPerBlock(); warp++ {
		base := b*tpb + warp*ws
		lanes := k.laneUnits(base)
		if lanes == 0 {
			continue
		}
		if k.plan.Schedule.Strategy == ThreadVertex {
			k.vertexWarpWork(base, lanes, &w)
		} else {
			k.edgeWarpWork(base, lanes, &w)
		}
	}
	return w
}

// vertexWarpWork accounts one thread-vertex warp.
func (k *threadKernel) vertexWarpWork(base, lanes int, w *gpu.BlockWork) {
	inPtr := k.g.InPtr()
	perElem := k.instsPerElem()
	overhead := k.perItemOverhead()

	var maxLaneInsts float64
	var totalEdgeSteps, totalItems, maxLaneSteps float64
	var anyWork bool
	var elems, chunks float64
	for l := 0; l < lanes; l++ {
		tile, first, count := k.unitSplit(base + l)
		te := float64(k.tileElems(tile))
		tc := float64(k.tileChunks(tile))
		if count == 0 || tc == 0 {
			continue
		}
		deg := float64(inPtr[first+count] - inPtr[first])
		laneInsts := float64(count)*(overhead+tc*VertexEpilogueInsts) + deg*te*perElem
		if laneInsts > maxLaneInsts {
			maxLaneInsts = laneInsts
		}
		if deg > maxLaneSteps {
			maxLaneSteps = deg
		}
		totalEdgeSteps += deg
		totalItems += float64(count)
		elems, chunks = te, tc // uniform across lanes (same tile geometry)
		anyWork = true
	}
	if !anyWork {
		return
	}
	w.Insts += maxLaneInsts
	if maxLaneInsts > w.MaxWarpCycles {
		w.MaxWarpCycles = maxLaneInsts
	}
	w.BusyWarpCycles += maxLaneInsts
	w.ActiveWarps++
	fw, sc := k.loadInstCounts()
	w.MemInsts += maxLaneSteps * (elems*fw + sc + 1)

	gsz := k.plan.Schedule.Group
	// Feature reads. Line-level traffic (Transactions): one line per lane
	// per edge-step per chunk. LSU requests (L1Requests): one per lane per
	// edge-step per ELEMENT — thread-mapped loads are uncoalesced, so every
	// scalar step replays across the active lanes' distinct lines.
	if k.a.present() {
		if k.a.kind == tensor.DstV {
			w.Transactions += totalItems * chunks * k.scatteredLines(1, k.a.cols)
			w.L1Requests += totalItems * elems / sectorService
		} else {
			w.Transactions += totalEdgeSteps * chunks / float64(lanes) * k.scatteredLines(lanes, k.a.cols)
			if k.a.cols == 1 {
				w.L1Requests += totalEdgeSteps
			} else {
				w.L1Requests += totalEdgeSteps * elems / sectorService
			}
		}
	}
	if k.b.present() {
		perChunk := chunks
		perElems := elems
		if k.b.cols == 1 {
			perChunk = 1
			perElems = 1
		}
		if k.b.kind == tensor.DstV {
			w.Transactions += totalItems * perChunk
			w.L1Requests += totalItems * perElems / sectorService
		} else {
			w.Transactions += totalEdgeSteps * perChunk / float64(lanes) * k.scatteredLines(lanes, k.b.cols)
			w.L1Requests += totalEdgeSteps * perElems / sectorService
		}
	}
	// Graph index reads: inPtr per item, inSrc per edge-step (4B scalars).
	w.Transactions += totalItems / float64(lanes) * k.seqLines(lanes, gsz, 1)
	w.Transactions += totalEdgeSteps / 8 // inSrc: partial coalescing of 4B reads
	w.L1Requests += totalItems + totalEdgeSteps/4
	if k.c.kind == tensor.EdgeK {
		w.Transactions += totalEdgeSteps / 8 // inEdges ids for edge-addressed output
		// Message creation: one write per edge-step per chunk, scattered.
		w.Transactions += totalEdgeSteps * chunks / float64(lanes) * k.scatteredLines(lanes, k.c.cols)
		w.L1Requests += totalEdgeSteps * (elems/sectorService + 0.25)
	} else {
		// Register accumulation; one write per item per chunk.
		w.Transactions += totalItems * chunks / float64(lanes) * k.seqLines(lanes, gsz*1, k.c.cols)
		w.L1Requests += totalItems * elems / sectorService
	}
}

// edgeWarpWork accounts one thread-edge warp. All lanes carry the same
// number of edges (work balance is the strategy's strength); the costs are
// scattered reads and atomic output conflicts.
func (k *threadKernel) edgeWarpWork(base, lanes int, w *gpu.BlockWork) {
	perElem := k.instsPerElem()
	overhead := k.perItemOverhead()
	edgeDst := k.g.EdgeDsts()

	gsz := k.plan.Schedule.Group
	tile0, _, _ := k.unitSplit(base)
	chunks := float64(k.tileChunks(tile0))
	elems := float64(k.tileElems(tile0))
	if chunks == 0 {
		return
	}

	// Per group-step accounting: lanes advance through their groups in
	// lockstep; at step s lane l handles edge first_l + s.
	var insts, trans, requests, atomicTrans, serial float64
	var anyWork bool
	maxSteps := gsz
	var dsts [32]int32
	for s := 0; s < maxSteps; s++ {
		active := 0
		for l := 0; l < lanes; l++ {
			_, first, count := k.unitSplit(base + l)
			if s >= count {
				continue
			}
			dsts[active] = edgeDst[first+s]
			active++
		}
		if active == 0 {
			continue
		}
		fActive := float64(active)
		anyWork = true
		insts += overhead + elems*perElem
		fw, sc := k.loadInstCounts()
		w.MemInsts += elems*fw + sc + 2 // per-element input loads + idx loads
		// Index reads: edgeSrc + edgeDst, 4B, lanes strided by Group.
		trans += 2 * k.seqLines(active, gsz, 1)
		requests += 2 * k.seqLines(active, gsz, 1)
		if k.a.present() {
			if k.a.cols == 1 {
				trans += k.scatteredLines(active, 1)
				requests += k.scatteredLines(active, 1)
			} else {
				trans += chunks * k.scatteredLines(active, k.a.cols)
				requests += elems * fActive / sectorService
			}
		}
		if k.b.present() {
			switch {
			case k.b.cols == 1 && k.b.kind == tensor.EdgeK:
				// Scalar edge weights: lanes read consecutive-ish words.
				trans += k.seqLines(active, gsz, 1)
				requests += k.seqLines(active, gsz, 1)
			case k.b.cols == 1:
				trans += k.scatteredLines(active, 1)
				requests += k.scatteredLines(active, 1)
			case k.b.kind == tensor.EdgeK:
				trans += chunks * k.seqLines(active, gsz, k.b.cols)
				requests += elems * fActive / sectorService
			default:
				trans += chunks * k.scatteredLines(active, k.b.cols)
				requests += elems * fActive / sectorService
			}
		}
		// Output: per chunk, distinct dst lines. Duplicated destinations are
		// warp-aggregated (Volta+): one atomic per distinct address per
		// element, plus a shuffle-reduction cost logarithmic in the largest
		// duplicate run, plus residual serialisation at the L2.
		if k.plan.NeedsAtomic {
			distinct, maxMult := dstStats(dsts[:active])
			aggDepth := float64(log2ceil(maxMult))
			atomicTrans += chunks * float64(distinct)
			requests += elems * float64(distinct) / sectorService
			serial += chunks * float64(maxMult-1) / 4
			insts += elems * aggDepth // warp shuffle reduction per element
		} else {
			// Message creation: rows are consecutive edge ids.
			trans += chunks * k.seqLines(active, gsz, k.c.cols)
			requests += elems * fActive / sectorService
		}
	}
	if !anyWork {
		return
	}
	w.Insts += insts
	if insts > w.MaxWarpCycles {
		w.MaxWarpCycles = insts
	}
	w.BusyWarpCycles += insts
	w.Transactions += trans + atomicTrans
	w.L1Requests += requests
	w.AtomicTransactions += atomicTrans
	w.SerialRounds += serial
	w.ActiveWarps++
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	d := 0
	for v := n - 1; v > 0; v >>= 1 {
		d++
	}
	return d
}

// dstStats returns the number of distinct destinations and the maximum
// multiplicity among a warp step's lanes. CSR-ordered edge lists give
// non-decreasing destinations, so the common case is a linear run scan;
// unordered inputs fall back to a quadratic scan over at most 32 lanes.
func dstStats(dsts []int32) (distinct, maxMult int) {
	if len(dsts) == 0 {
		return 0, 1
	}
	sorted := true
	for i := 1; i < len(dsts); i++ {
		if dsts[i] < dsts[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		maxMult = 1
		run := 1
		distinct = 1
		for i := 1; i < len(dsts); i++ {
			if dsts[i] == dsts[i-1] {
				run++
				if run > maxMult {
					maxMult = run
				}
				continue
			}
			run = 1
			distinct++
		}
		return distinct, maxMult
	}
	maxMult = 1
	for i, d := range dsts {
		dup := false
		mult := 1
		for j := 0; j < i; j++ {
			if dsts[j] == d {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for j := i + 1; j < len(dsts); j++ {
			if dsts[j] == d {
				mult++
			}
		}
		distinct++
		if mult > maxMult {
			maxMult = mult
		}
	}
	return distinct, maxMult
}

func (k *threadKernel) TraceBlock(b int, visit func(gpu.WarpAccess)) {
	tpb := k.dev.ThreadsPerBlock
	ws := k.dev.WarpSize
	for warp := 0; warp < k.WarpsPerBlock(); warp++ {
		base := b*tpb + warp*ws
		lanes := k.laneUnits(base)
		if lanes == 0 {
			continue
		}
		if k.plan.Schedule.Strategy == ThreadVertex {
			k.vertexWarpTrace(base, lanes, visit)
		} else {
			k.edgeWarpTrace(base, lanes, visit)
		}
	}
}

// vertexWarpTrace replays a thread-vertex warp in lockstep over edge-steps.
func (k *threadKernel) vertexWarpTrace(base, lanes int, visit func(gpu.WarpAccess)) {
	inPtr := k.g.InPtr()
	inSrc := k.g.InSrcs()
	inEdges := k.g.InEdgeIDs()
	tile := 0

	// Initialise per-lane cursors.
	for l := 0; l < lanes; l++ {
		t, first, count := k.unitSplit(base + l)
		cur := &k.cursors[l]
		cur.tile = t
		cur.item = int32(first)
		cur.itemEnd = int32(first + count)
		cur.edgePos = 0
		cur.active = count > 0 && k.tileChunks(t) > 0
		if cur.active {
			cur.edgeCount = inPtr[cur.item+1] - inPtr[cur.item]
			tile = t
		}
		// Skip zero-degree vertices up front.
		for cur.active && cur.edgeCount == 0 {
			k.advanceVertexLane(cur, inPtr)
		}
	}

	// inPtr reads (per item, approximated as one access per warp at start).
	for l := 0; l < lanes; l++ {
		if k.cursors[l].active || k.cursors[l].itemEnd > k.cursors[l].item {
			k.addLine((segInPtr*segmentBytes + int64(k.cursors[l].item)*4) >> 7)
		}
	}
	k.flushAccess(false, visit)

	epl := elemsPerLine(k.dev)
	for {
		anyActive := false
		// Index read: inSrc for each active lane's current edge.
		for l := 0; l < lanes; l++ {
			cur := &k.cursors[l]
			if !cur.active {
				continue
			}
			anyActive = true
			off := inPtr[cur.item] + cur.edgePos
			k.addLine((segInSrc*segmentBytes + int64(off)*4) >> 7)
		}
		if !anyActive {
			break
		}
		k.flushAccess(false, visit)

		// Feature accesses chunk by chunk (feature loop is innermost).
		for c := cur0Tile(tile); c < k.featChunks; c += k.plan.Schedule.Tile {
			elem := c * epl
			for l := 0; l < lanes; l++ {
				cur := &k.cursors[l]
				if !cur.active {
					continue
				}
				off := inPtr[cur.item] + cur.edgePos
				u := inSrc[off]
				v := cur.item
				e := inEdges[off]
				if k.a.present() {
					if k.a.cols == 1 {
						if c == cur0Tile(tile) {
							k.addLine(k.a.line(k.a.row(e, u, v), 0))
						}
					} else {
						k.addLineDup(k.a.line(k.a.row(e, u, v), elem))
					}
				}
				if k.b.present() {
					if k.b.cols == 1 {
						if c == cur0Tile(tile) {
							k.addLine(k.b.line(k.b.row(e, u, v), 0))
						}
					} else {
						k.addLineDup(k.b.line(k.b.row(e, u, v), elem))
					}
				}
				if k.c.kind == tensor.EdgeK {
					k.addLineDup(k.c.line(e, elem))
				}
			}
			k.flushAccess(false, visit)
		}

		// Advance lanes; emit output writes when a lane finishes a vertex.
		for l := 0; l < lanes; l++ {
			cur := &k.cursors[l]
			if !cur.active {
				continue
			}
			cur.edgePos++
			if cur.edgePos >= cur.edgeCount {
				if k.c.kind == tensor.DstV {
					for c := cur0Tile(cur.tile); c < k.featChunks; c += k.plan.Schedule.Tile {
						k.addLine(k.c.line(cur.item, c*epl))
					}
				}
				k.advanceVertexLane(cur, inPtr)
				for cur.active && cur.edgeCount == 0 {
					k.advanceVertexLane(cur, inPtr)
				}
			}
		}
		k.flushAccess(false, visit)
	}
}

// cur0Tile returns the first chunk index of a tile.
func cur0Tile(tile int) int { return tile }

func (k *threadKernel) advanceVertexLane(cur *laneCursor, inPtr []int32) {
	cur.item++
	cur.edgePos = 0
	if cur.item >= cur.itemEnd {
		cur.active = false
		return
	}
	cur.edgeCount = inPtr[cur.item+1] - inPtr[cur.item]
}

// edgeWarpTrace replays a thread-edge warp: lanes advance through their edge
// groups in lockstep.
func (k *threadKernel) edgeWarpTrace(base, lanes int, visit func(gpu.WarpAccess)) {
	edgeSrc := k.g.EdgeSrcs()
	edgeDst := k.g.EdgeDsts()
	gsz := k.plan.Schedule.Group
	epl := elemsPerLine(k.dev)

	tile0, _, _ := k.unitSplit(base)
	if k.tileChunks(tile0) == 0 {
		return
	}
	for s := 0; s < gsz; s++ {
		// Index reads.
		anyActive := false
		for l := 0; l < lanes; l++ {
			_, first, count := k.unitSplit(base + l)
			if s >= count {
				continue
			}
			anyActive = true
			e := int64(first + s)
			k.addLine((segEdgeSrc*segmentBytes + e*4) >> 7)
			k.addLine((segEdgeDst*segmentBytes + e*4) >> 7)
		}
		if !anyActive {
			break
		}
		k.flushAccess(false, visit)

		for c := tile0; c < k.featChunks; c += k.plan.Schedule.Tile {
			elem := c * epl
			// Input reads.
			for l := 0; l < lanes; l++ {
				_, first, count := k.unitSplit(base + l)
				if s >= count {
					continue
				}
				e := int32(first + s)
				u, v := edgeSrc[e], edgeDst[e]
				if k.a.present() {
					if k.a.cols == 1 {
						if c == tile0 {
							k.addLine(k.a.line(k.a.row(e, u, v), 0))
						}
					} else {
						k.addLineDup(k.a.line(k.a.row(e, u, v), elem))
					}
				}
				if k.b.present() {
					if k.b.cols == 1 {
						if c == tile0 {
							k.addLine(k.b.line(k.b.row(e, u, v), 0))
						}
					} else {
						k.addLineDup(k.b.line(k.b.row(e, u, v), elem))
					}
				}
			}
			k.flushAccess(false, visit)
			// Output access.
			for l := 0; l < lanes; l++ {
				_, first, count := k.unitSplit(base + l)
				if s >= count {
					continue
				}
				e := int32(first + s)
				v := edgeDst[e]
				if k.c.kind == tensor.EdgeK {
					k.addLine(k.c.line(e, elem))
				} else {
					k.addLine(k.c.line(v, elem))
				}
			}
			k.flushAccess(k.plan.NeedsAtomic, visit)
		}
	}
}
