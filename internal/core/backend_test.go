package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Backend-abstraction tests: registry resolution, lower-time validation,
// counters, and — most importantly — parallel-backend equivalence with the
// reference interpreter for every strategy, with a worker pool large
// enough that `go test -race` actually exercises the concurrency even on
// small CI machines.

func TestBackendRegistry(t *testing.T) {
	for _, name := range BackendNames {
		b, err := Backend(name)
		if err != nil {
			t.Fatalf("Backend(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("Backend(%q).Name() = %q", name, b.Name())
		}
	}
	if _, err := Backend("cuda"); err == nil {
		t.Error("unknown backend should fail")
	}
	if b, err := Backend(""); err != nil || b == nil {
		t.Errorf("empty name should resolve to the default backend, got %v", err)
	}
}

func TestSetDefaultBackend(t *testing.T) {
	orig := DefaultBackend()
	defer func() { _ = SetDefaultBackend(orig.Name()) }()
	if err := SetDefaultBackend("reference"); err != nil {
		t.Fatal(err)
	}
	if got := DefaultBackend().Name(); got != "reference" {
		t.Errorf("default backend = %q, want reference", got)
	}
	if err := SetDefaultBackend("no-such"); err == nil {
		t.Error("bad name should fail")
	}
}

// allBackends returns one instance of each backend, with the parallel one
// forced to 4 workers so races are reachable under -race.
func allBackends() []ExecBackend {
	return []ExecBackend{ReferenceBackend(), NewParallelBackend(4), NewSimBackend(nil)}
}

// TestParallelMatchesReferencePerStrategy is the per-strategy equivalence
// gate: for every strategy and every operator family in the exec tests'
// table, the 4-worker parallel backend reproduces the reference output.
func TestParallelMatchesReferencePerStrategy(t *testing.T) {
	g := testGraph(t, 300, 4000, 11)
	par := NewParallelBackend(4)
	for _, tc := range testOps {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			feat := 19
			ref := makeOperands(g, tc.op, feat, tc.widthOneB, 5)
			if err := Reference(g, tc.op, ref); err != nil {
				t.Fatal(err)
			}
			for _, strat := range Strategies {
				got := makeOperands(g, tc.op, feat, tc.widthOneB, 5)
				p := MustCompile(tc.op, Schedule{Strategy: strat, Group: 1, Tile: 1})
				k, err := par.Lower(p, g, got)
				if err != nil {
					t.Fatalf("%s: %v", strat, err)
				}
				if err := k.Run(); err != nil {
					t.Fatalf("%s: %v", strat, err)
				}
				if !got.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
					t.Errorf("%s: parallel output differs (maxdiff %v)",
						strat, got.C.T.MaxDiff(ref.C.T))
				}
			}
		})
	}
}

// TestParallelRepeatedRuns: a lowered kernel is reusable — repeated Run
// calls are valid and idempotent for the same inputs.
func TestParallelRepeatedRuns(t *testing.T) {
	g := testGraph(t, 200, 3000, 3)
	o := makeOperands(g, ops.AggrMean, 8, false, 9)
	p := MustCompile(ops.AggrMean, Schedule{Strategy: ThreadEdge, Group: 1, Tile: 1})
	k, err := NewParallelBackend(4).Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	first := o.C.T.Clone()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !o.C.T.Equal(first) {
		t.Error("second Run produced different output")
	}
	c := k.Counters()
	if c.Runs != 2 || c.Workers != 4 || c.Edges != 2*int64(g.NumEdges()) {
		t.Errorf("counters = %+v, want Runs=2 Workers=4 Edges=%d", c, 2*g.NumEdges())
	}
	if c.Shards < 2 {
		t.Errorf("counters.Shards = %d, want >= 2", c.Shards)
	}
}

// TestLoweringValidatesOnce: bad operands fail at Lower, not Run, for
// every backend.
func TestLoweringValidatesOnce(t *testing.T) {
	g := testGraph(t, 20, 60, 4)
	p := MustCompile(ops.AggrSum, DefaultSchedule)
	bad := makeOperands(g, ops.AggrSum, 4, false, 1)
	bad.A = tensor.NullTensor
	for _, b := range allBackends() {
		if _, err := b.Lower(p, g, bad); err == nil {
			t.Errorf("%s: Lower accepted invalid operands", b.Name())
		}
		good := makeOperands(g, ops.AggrSum, 4, false, 1)
		k, err := b.Lower(p, g, good)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if k.Plan() != p {
			t.Errorf("%s: kernel lost its plan", b.Name())
		}
		if err := k.Run(); err != nil {
			t.Errorf("%s: Run: %v", b.Name(), err)
		}
	}
}

// TestSimBackendRecordsCycles: the sim backend produces both the
// functional output and simulated cycle counters.
func TestSimBackendRecordsCycles(t *testing.T) {
	g := testGraph(t, 100, 800, 6)
	sim := NewSimBackend(nil)
	o := makeOperands(g, ops.AggrSum, 16, false, 2)
	ref := makeOperands(g, ops.AggrSum, 16, false, 2)
	if err := Reference(g, ops.AggrSum, ref); err != nil {
		t.Fatal(err)
	}
	p := MustCompile(ops.AggrSum, Schedule{Strategy: WarpVertex, Group: 1, Tile: 1})
	k, err := sim.Lower(p, g, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !o.C.T.AllClose(ref.C.T, 1e-4, 1e-4) {
		t.Error("sim backend output differs from reference")
	}
	if c := k.Counters(); c.SimCycles <= 0 {
		t.Errorf("sim counters missing cycles: %+v", c)
	}
}

// TestParallelEmptyAndTinyGraphs: degenerate shapes take the sequential
// cutoff and empty graphs don't panic.
func TestParallelEmptyAndTinyGraphs(t *testing.T) {
	par := NewParallelBackend(4)
	empty, err := graph.FromCOO(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := Operands{
		A: tensor.Src(tensor.NewDense(0, 4)),
		B: tensor.NullTensor,
		C: tensor.Dst(tensor.NewDense(0, 4)),
	}
	for _, strat := range Strategies {
		p := MustCompile(ops.AggrSum, Schedule{Strategy: strat, Group: 1, Tile: 1})
		if err := p.ExecuteOn(par, empty, o); err != nil {
			t.Fatalf("%s empty: %v", strat, err)
		}
	}

	tiny, err := graph.FromCOO(2, []int32{0}, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	to := Operands{
		A: tensor.Src(tensor.FromSlice(2, 1, []float32{7, 0})),
		B: tensor.NullTensor,
		C: tensor.Dst(tensor.NewDense(2, 1)),
	}
	p := MustCompile(ops.AggrSum, Schedule{Strategy: WarpEdge, Group: 1, Tile: 1})
	if err := p.ExecuteOn(par, tiny, to); err != nil {
		t.Fatal(err)
	}
	if to.C.T.At(1, 0) != 7 {
		t.Errorf("tiny aggregation = %v, want 7", to.C.T.At(1, 0))
	}
}
