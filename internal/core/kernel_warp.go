package core

import (
	"repro/internal/gpu"
	"repro/internal/tensor"
)

// warpKernel models the warp-vertex and warp-edge strategies: a whole warp
// owns Group work items and its 32 lanes split the feature dimension, so
// feature reads and writes are coalesced (one transaction per chunk) and
// there is no intra-warp divergence. The costs are the flip side of the
// trade-off (Table 6): many more units launched (pressure on residency),
// reduced per-warp cache footprint, and — for warp-edge — atomic traffic on
// destination rows, though without intra-warp word conflicts (lanes touch
// distinct feature words).
type warpKernel struct {
	*model
}

func (k *warpKernel) NumBlocks() int {
	wpb := k.dev.WarpsPerBlock()
	return (k.units + wpb - 1) / wpb
}

func (k *warpKernel) WarpsPerBlock() int { return k.dev.WarpsPerBlock() }

func (k *warpKernel) BlockWork(b int) gpu.BlockWork {
	var w gpu.BlockWork
	wpb := k.dev.WarpsPerBlock()
	for warp := 0; warp < wpb; warp++ {
		unit := b*wpb + warp
		if unit >= k.units {
			break
		}
		if k.plan.Schedule.Strategy == WarpVertex {
			k.vertexWarpWork(unit, &w)
		} else {
			k.edgeWarpWork(unit, &w)
		}
	}
	return w
}

// operandReadsPerEdge returns the transactions one edge contributes for an
// input operand: one line per owned chunk for full-width operands, one
// scalar line for broadcast operands.
func (k *warpKernel) operandReadsPerEdge(d operandDesc, chunks float64) float64 {
	if !d.present() {
		return 0
	}
	if d.cols == 1 {
		return 1
	}
	return chunks
}

func (k *warpKernel) vertexWarpWork(unit int, w *gpu.BlockWork) {
	tile, first, count := k.unitSplit(unit)
	chunks := float64(k.tileChunks(tile))
	if count == 0 || chunks == 0 {
		return
	}
	inPtr := k.g.InPtr()
	deg := float64(inPtr[first+count] - inPtr[first])
	perElem := k.instsPerElem()

	// One warp instruction covers a chunk's lanes, so the per-edge issue
	// cost is chunks x per-element cost (plus index handling).
	wInsts := float64(count)*(k.perItemOverhead()+chunks*VertexEpilogueInsts) +
		deg*(chunks*perElem+1)
	w.Insts += wInsts
	if wInsts > w.MaxWarpCycles {
		w.MaxWarpCycles = wInsts
	}
	w.BusyWarpCycles += wInsts
	fw, sc := k.loadInstCounts()
	w.MemInsts += deg*(chunks*fw+sc+1) + float64(count)
	// inPtr per item; inSrc per edge: sequential 4B reads, 32 per line.
	w.Transactions += float64(count)/float64(elemsPerLine(k.dev)) + 1
	w.Transactions += deg / float64(elemsPerLine(k.dev))
	if k.a.present() {
		if k.a.kind == tensor.DstV {
			w.Transactions += float64(count) * chunks
		} else {
			w.Transactions += deg * k.operandReadsPerEdge(k.a, chunks)
		}
	}
	if k.b.present() {
		if k.b.kind == tensor.DstV {
			w.Transactions += float64(count) * chunks
		} else {
			w.Transactions += deg * k.operandReadsPerEdge(k.b, chunks)
		}
	}
	if k.c.kind == tensor.EdgeK {
		w.Transactions += deg / float64(elemsPerLine(k.dev)) // inEdges ids
		w.Transactions += deg * chunks                       // per-edge output rows
	} else {
		w.Transactions += float64(count) * chunks // register accumulate, one store per chunk
	}
	w.ActiveWarps++
}

func (k *warpKernel) edgeWarpWork(unit int, w *gpu.BlockWork) {
	tile, first, count := k.unitSplit(unit)
	chunks := float64(k.tileChunks(tile))
	if count == 0 || chunks == 0 {
		return
	}
	_ = first
	perElem := k.instsPerElem()
	n := float64(count)

	wInsts := n * (k.perItemOverhead() + chunks*perElem + 2)
	w.Insts += wInsts
	if wInsts > w.MaxWarpCycles {
		w.MaxWarpCycles = wInsts
	}
	w.BusyWarpCycles += wInsts
	fw, sc := k.loadInstCounts()
	w.MemInsts += n * (chunks*fw + sc + 2)
	// edgeSrc + edgeDst: sequential scalar reads.
	w.Transactions += 2 * n / float64(elemsPerLine(k.dev))
	w.Transactions += n * k.operandReadsPerEdge(k.a, chunks)
	w.Transactions += n * k.operandReadsPerEdge(k.b, chunks)
	if k.c.kind == tensor.EdgeK {
		w.Transactions += n * chunks
	} else {
		// Atomic reduction per edge per chunk; lanes hit distinct words, so
		// no intra-warp replay, but the traffic is atomic.
		w.Transactions += n * chunks
		w.AtomicTransactions += n * chunks
	}
	w.ActiveWarps++
}

func (k *warpKernel) TraceBlock(b int, visit func(gpu.WarpAccess)) {
	wpb := k.dev.WarpsPerBlock()
	for warp := 0; warp < wpb; warp++ {
		unit := b*wpb + warp
		if unit >= k.units {
			break
		}
		if k.plan.Schedule.Strategy == WarpVertex {
			k.vertexWarpTrace(unit, visit)
		} else {
			k.edgeWarpTrace(unit, visit)
		}
	}
}

func (k *warpKernel) vertexWarpTrace(unit int, visit func(gpu.WarpAccess)) {
	tile, first, count := k.unitSplit(unit)
	if count == 0 || k.tileChunks(tile) == 0 {
		return
	}
	inPtr := k.g.InPtr()
	inSrc := k.g.InSrcs()
	inEdges := k.g.InEdgeIDs()
	epl := elemsPerLine(k.dev)

	for v := int32(first); v < int32(first+count); v++ {
		k.addLine((segInPtr*segmentBytes + int64(v)*4) >> 7)
		k.flushAccess(false, visit)
		lo, hi := inPtr[v], inPtr[v+1]
		for off := lo; off < hi; off++ {
			u := inSrc[off]
			e := inEdges[off]
			k.addLine((segInSrc*segmentBytes + int64(off)*4) >> 7)
			k.flushAccess(false, visit)
			for c := tile; c < k.featChunks; c += k.plan.Schedule.Tile {
				elem := c * epl
				if k.a.present() {
					if k.a.cols == 1 {
						if c == tile {
							k.addLine(k.a.line(k.a.row(e, u, v), 0))
						}
					} else {
						k.addLine(k.a.line(k.a.row(e, u, v), elem))
					}
				}
				if k.b.present() {
					if k.b.cols == 1 {
						if c == tile {
							k.addLine(k.b.line(k.b.row(e, u, v), 0))
						}
					} else {
						k.addLine(k.b.line(k.b.row(e, u, v), elem))
					}
				}
				if k.c.kind == tensor.EdgeK {
					k.addLine(k.c.line(e, elem))
				}
				k.flushAccess(false, visit)
			}
		}
		if k.c.kind == tensor.DstV {
			for c := tile; c < k.featChunks; c += k.plan.Schedule.Tile {
				k.addLine(k.c.line(v, c*epl))
			}
			k.flushAccess(false, visit)
		}
	}
}

func (k *warpKernel) edgeWarpTrace(unit int, visit func(gpu.WarpAccess)) {
	tile, first, count := k.unitSplit(unit)
	if count == 0 || k.tileChunks(tile) == 0 {
		return
	}
	edgeSrc := k.g.EdgeSrcs()
	edgeDst := k.g.EdgeDsts()
	epl := elemsPerLine(k.dev)

	for e := int32(first); e < int32(first+count); e++ {
		u, v := edgeSrc[e], edgeDst[e]
		k.addLine((segEdgeSrc*segmentBytes + int64(e)*4) >> 7)
		k.addLine((segEdgeDst*segmentBytes + int64(e)*4) >> 7)
		k.flushAccess(false, visit)
		for c := tile; c < k.featChunks; c += k.plan.Schedule.Tile {
			elem := c * epl
			if k.a.present() {
				if k.a.cols == 1 {
					if c == tile {
						k.addLine(k.a.line(k.a.row(e, u, v), 0))
					}
				} else {
					k.addLine(k.a.line(k.a.row(e, u, v), elem))
				}
			}
			if k.b.present() {
				if k.b.cols == 1 {
					if c == tile {
						k.addLine(k.b.line(k.b.row(e, u, v), 0))
					}
				} else {
					k.addLine(k.b.line(k.b.row(e, u, v), elem))
				}
			}
			k.flushAccess(false, visit)
			if k.c.kind == tensor.EdgeK {
				k.addLine(k.c.line(e, elem))
				k.flushAccess(false, visit)
			} else {
				k.addLine(k.c.line(v, elem))
				k.flushAccess(true, visit)
			}
		}
	}
}
