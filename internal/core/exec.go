package core

import (
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Functional execution of a compiled plan: computes the operator's real
// output. The strategy determines traversal order (vertex-centric or
// edge-centric), which can change floating-point reduction order but not the
// result up to rounding; tests verify all schedules agree with the reference
// loop within tolerance.

// fetcher returns the operand value for (edge, src, dst, feature). Width-1
// operands broadcast across the feature dimension.
type fetcher func(e, u, v int32, f int) float32

func makeFetcher(t tensor.Typed) fetcher {
	switch t.Kind {
	case tensor.Null:
		return func(e, u, v int32, f int) float32 { return 0 }
	case tensor.SrcV:
		d := t.T
		if d.Cols == 1 {
			return func(e, u, v int32, f int) float32 { return d.Data[u] }
		}
		return func(e, u, v int32, f int) float32 { return d.Data[int(u)*d.Cols+f] }
	case tensor.DstV:
		d := t.T
		if d.Cols == 1 {
			return func(e, u, v int32, f int) float32 { return d.Data[v] }
		}
		return func(e, u, v int32, f int) float32 { return d.Data[int(v)*d.Cols+f] }
	case tensor.EdgeK:
		d := t.T
		if d.Cols == 1 {
			return func(e, u, v int32, f int) float32 { return d.Data[e] }
		}
		return func(e, u, v int32, f int) float32 { return d.Data[int(e)*d.Cols+f] }
	default:
		// Invariant, not input-reachable: validateOperands rejects unknown
		// operand kinds before any backend lowers a fetcher, so reaching this
		// means a new tensor.Kind was added without a fetcher.
		panic("core: bad operand kind")
	}
}

// Execute runs the plan functionally on g with the sequential reference
// interpreter, writing the output into o.C.T. Callers that want the
// multi-core host executor (or the simulator) lower through an ExecBackend
// instead; Execute stays the semantic oracle.
func (p *Plan) Execute(g *graph.Graph, o Operands) error {
	return p.ExecuteOn(ReferenceBackend(), g, o)
}

// executeMessageCreation computes per-edge outputs. Traversal order follows
// the strategy but each edge is written exactly once, so order is
// immaterial.
func (p *Plan) executeMessageCreation(g *graph.Graph, o Operands, fa, fb fetcher, f int) {
	out := o.C.T
	eop := p.Op.EdgeOp
	if p.Schedule.Strategy.VertexParallel() {
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			srcs, eids := g.InEdges(v)
			for i, e := range eids {
				u := srcs[i]
				row := out.Row(int(e))
				for j := 0; j < f; j++ {
					row[j] = eop.Apply(fa(e, u, v, j), fb(e, u, v, j))
				}
			}
		}
		return
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		u, v := g.EdgeEndpoints(e)
		row := out.Row(int(e))
		for j := 0; j < f; j++ {
			row[j] = eop.Apply(fa(e, u, v, j), fb(e, u, v, j))
		}
	}
}

// executeVertexCentric accumulates each destination's reduction in registers
// (the vertex-parallel kernels' behaviour: one owner per output row). acc is
// caller-provided scratch of at least f floats, so lowered kernels can run
// repeatedly without allocating.
func (p *Plan) executeVertexCentric(g *graph.Graph, o Operands, fa, fb fetcher, f int, acc []float32) {
	out := o.C.T
	eop, gop := p.Op.EdgeOp, p.Op.GatherOp
	identity := gop.Identity()
	acc = acc[:f]
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		srcs, eids := g.InEdges(v)
		row := out.Row(int(v))
		if len(eids) == 0 {
			for j := range row {
				row[j] = 0 // zero-degree convention (DGL): empty reduction is 0
			}
			continue
		}
		for j := range acc {
			acc[j] = identity
		}
		for i, e := range eids {
			u := srcs[i]
			for j := 0; j < f; j++ {
				acc[j] = gop.Combine(acc[j], eop.Apply(fa(e, u, v, j), fb(e, u, v, j)))
			}
		}
		if gop == ops.GatherMean {
			inv := 1 / float32(len(eids))
			for j := range acc {
				acc[j] *= inv
			}
		}
		copy(row, acc)
	}
}

// executeEdgeCentric streams edges in id order, reducing into the output
// tensor directly (the edge-parallel kernels' atomic-update behaviour).
func (p *Plan) executeEdgeCentric(g *graph.Graph, o Operands, fa, fb fetcher, f int) {
	out := o.C.T
	eop, gop := p.Op.EdgeOp, p.Op.GatherOp
	identity := gop.Identity()
	for i := range out.Data {
		out.Data[i] = identity
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		u, v := g.EdgeEndpoints(e)
		row := out.Row(int(v))
		for j := 0; j < f; j++ {
			row[j] = gop.Combine(row[j], eop.Apply(fa(e, u, v, j), fb(e, u, v, j)))
		}
	}
	// Post-pass: mean normalisation and the zero-degree convention.
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		row := out.Row(int(v))
		deg := g.InDegree(v)
		if deg == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		if gop == ops.GatherMean {
			inv := 1 / float32(deg)
			for j := range row {
				row[j] *= inv
			}
		}
	}
}

// Reference computes the operator with the canonical nested loop of Fig. 5,
// independent of any schedule. Tests compare every schedule against it.
func Reference(g *graph.Graph, op ops.OpInfo, o Operands) error {
	p, err := Compile(op, Schedule{Strategy: ThreadVertex, Group: 1, Tile: 1})
	if err != nil {
		return err
	}
	return p.Execute(g, o)
}
