package core

import (
	"context"

	"repro/internal/graph"
	"repro/internal/telemetry"
)

// Fusion-region composition: a region kernel wraps one lowered graph kernel
// with elementwise prologue/epilogue stages so the whole region — absorbed
// operand chains, the graph operator, and the output epilogue — executes as
// one logical kernel launch. The stages are closures the compiler builds at
// Compile time (they capture staging tensors and unary chains; see
// internal/program); composition itself is backend-agnostic, so the same
// region runs on the reference interpreter, the parallel host executor and
// the sharded backend unchanged.
//
// Telemetry follows the sim backend's precedent: one logical run must
// produce one kernel record, so the inner kernel's site is silenced and the
// region registers its own site under the "region" backend label.

// RegionStage is one pre-built elementwise stage of a composed region: a
// staging copy that applies an absorbed operand chain, or an in-place
// epilogue over the region output. Stages must not allocate — they run on
// the zero-allocation Run path.
type RegionStage func()

// telemetrySilencer is implemented by lowered kernels whose per-run
// telemetry a wrapping kernel can turn off, keeping one record per logical
// run (the sim backend nulls the reference kernel's site the same way).
type telemetrySilencer interface{ silenceTelemetry() }

// silenceTelemetry implements telemetrySilencer. A nil site is inert: Begin
// returns 0 and End does nothing, so the silenced kernel runs untouched.
func (k *refKernel) silenceTelemetry() { k.site = nil }

// silenceTelemetry implements telemetrySilencer.
func (k *parallelKernel) silenceTelemetry() { k.site = nil }

// silenceTelemetry implements telemetrySilencer.
func (k *shardedKernel) silenceTelemetry() { k.site = nil }

// silenceTelemetry implements telemetrySilencer.
func (k *simKernel) silenceTelemetry() { k.site = nil }

// silenceTelemetry implements telemetrySilencer: the ladder's record comes
// from whichever rung actually ran, so both rungs are silenced.
func (k *resilientKernel) silenceTelemetry() {
	if s, ok := k.primary.(telemetrySilencer); ok {
		s.silenceTelemetry()
	}
	if s, ok := k.fallback.(telemetrySilencer); ok {
		s.silenceTelemetry()
	}
}

// ComposeRegion wraps an already-lowered kernel with the region's pre and
// post stages and returns the composed kernel. label names the region in
// telemetry (the compiler passes the bounded region name). When the inner
// kernel is a sharded lowering the composition preserves that: the returned
// kernel re-exports ShardedLowering so the compiler's scratch folding still
// sees it.
func ComposeRegion(inner CompiledKernel, pre, post []RegionStage, label string, g *graph.Graph) CompiledKernel {
	if s, ok := inner.(telemetrySilencer); ok {
		s.silenceTelemetry()
	}
	p := inner.Plan()
	//lint:allow hook-discipline -- site registration happens once at compose time, off the Run hot path
	site := telemetry.NewKernelSite(
		label, p.Schedule.Strategy.Code(), p.Schedule.String(), "region",
		int64(g.NumVertices()), int64(g.NumEdges()))
	rk := regionKernel{inner: inner, pre: pre, post: post, site: site}
	if sl, ok := inner.(ShardedLowering); ok {
		return &shardedRegionKernel{regionKernel: rk, sl: sl}
	}
	return &rk
}

type regionKernel struct {
	inner     CompiledKernel
	pre, post []RegionStage
	runs      int64
	site      *telemetry.KernelSite
}

// Plan implements CompiledKernel.
func (k *regionKernel) Plan() *Plan { return k.inner.Plan() }

// Counters implements CompiledKernel: the inner kernel's counters, with Runs
// counted at the region level (the inner kernel's runs equal the region's).
func (k *regionKernel) Counters() Counters { return k.inner.Counters() }

// ConflictHandling implements ConflictReporter by delegation: the stages are
// elementwise over private or output storage and introduce no new writes
// that could conflict.
func (k *regionKernel) ConflictHandling() string {
	if cr, ok := k.inner.(ConflictReporter); ok {
		return cr.ConflictHandling()
	}
	return ""
}

// Run implements CompiledKernel.
func (k *regionKernel) Run() error { return k.RunCtx(context.Background()) }

// RunCtx implements CompiledKernel: prologue stages, the inner kernel, then
// epilogue stages, as one telemetry record. A panic in a stage is recovered
// into a *KernelError exactly like a panic inside a backend kernel; the
// inner kernel keeps its own recovery, so its errors arrive here already
// typed and pass through.
func (k *regionKernel) RunCtx(ctx context.Context) (err error) {
	tstart := k.site.Begin()
	// Registered before the recover defer so it runs after it (LIFO) and
	// observes the panic already converted into err.
	defer func() {
		oc, detail := outcomeOf(err)
		k.site.EndCtx(ctx, tstart, oc, detail, nil)
	}()
	defer func() {
		if r := recover(); r != nil {
			err = newKernelError(k.inner.Plan(), "region", r, captureStack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, st := range k.pre {
		st()
	}
	if err := k.inner.RunCtx(ctx); err != nil {
		return err
	}
	for _, st := range k.post {
		st()
	}
	k.runs++
	return nil
}

// shardedRegionKernel is a regionKernel over a sharded inner lowering; it
// re-exports the ShardedLowering surface so program-level scratch folding
// and stats see through the composition.
type shardedRegionKernel struct {
	regionKernel
	sl ShardedLowering
}

// ShardCount implements ShardedLowering.
func (k *shardedRegionKernel) ShardCount() int { return k.sl.ShardCount() }

// ShardEdgeCut implements ShardedLowering.
func (k *shardedRegionKernel) ShardEdgeCut() float64 { return k.sl.ShardEdgeCut() }

// ShardScratchFloats implements ShardedLowering.
func (k *shardedRegionKernel) ShardScratchFloats() int { return k.sl.ShardScratchFloats() }

// BindShardScratch implements ShardedLowering.
func (k *shardedRegionKernel) BindShardScratch(buf []float32) { k.sl.BindShardScratch(buf) }
