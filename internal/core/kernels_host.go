package core

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// Specialized host inner loops for the parallel backend. The reference
// interpreter pays a fetcher-closure call per (edge, feature) element; here
// lowering picks one fused row kernel per (edge_op x gather_op x
// operand-kind) combination, so the inner loop is a straight slice walk the
// compiler can bounds-check-eliminate. Broadcast (width-1) operands branch
// once per edge row, not per element.

// rowSel resolves one operand's feature row for an edge (e, u->v). A nil
// return marks an absent operand; width-1 operands yield a 1-element slice.
type rowSel func(e, u, v int32) []float32

// lowerRowSel builds the row selector for one typed operand.
func lowerRowSel(t tensor.Typed) rowSel {
	switch t.Kind {
	case tensor.Null:
		return func(e, u, v int32) []float32 { return nil }
	case tensor.SrcV:
		d := t.T
		c := d.Cols
		return func(e, u, v int32) []float32 { i := int(u) * c; return d.Data[i : i+c] }
	case tensor.DstV:
		d := t.T
		c := d.Cols
		return func(e, u, v int32) []float32 { i := int(v) * c; return d.Data[i : i+c] }
	case tensor.EdgeK:
		d := t.T
		c := d.Cols
		return func(e, u, v int32) []float32 { i := int(e) * c; return d.Data[i : i+c] }
	default:
		// Invariant, not input-reachable: validateOperands (run at every
		// Lower before this) rejects any operand kind outside the enum, so an
		// unknown kind here means a new tensor.Kind was added without a
		// selector.
		panic("core: bad operand kind")
	}
}

// fusedRow folds one edge's contribution into an accumulator row:
// acc = gather(acc, edge_op(a, b)), elementwise over the feature dimension.
// For message creation the "gather" is a plain store. a/b may be nil
// (absent operand) or length 1 (broadcast scalar).
type fusedRow func(acc, a, b []float32)

// lowerRowKernel selects the fused specialization for (edge_op, gather_op).
// GatherMean lowers to the sum kernel; the mean division is a post-pass.
// An op combination with no host kernel is a lowering error (reachable from
// user-constructed OpInfo values), not a panic.
func lowerRowKernel(eop ops.EdgeOp, gop ops.GatherOp) (fusedRow, error) {
	if k := rowKernelFor(eop, gop); k != nil {
		return k, nil
	}
	return nil, fmt.Errorf("core: no host kernel for edge op %s with gather %s", eop, gop)
}

// rowKernelFor returns the specialization, or nil when none exists.
func rowKernelFor(eop ops.EdgeOp, gop ops.GatherOp) fusedRow {
	switch gop {
	case ops.GatherSum, ops.GatherMean:
		switch eop {
		case ops.CopyLHS:
			return sumCopyA
		case ops.CopyRHS, ops.EdgeNull:
			return sumCopyB
		case ops.EdgeAdd:
			return sumAdd
		case ops.EdgeSub:
			return sumSub
		case ops.EdgeMul:
			return sumMul
		case ops.EdgeDiv:
			return sumDiv
		}
	case ops.GatherMax:
		switch eop {
		case ops.CopyLHS:
			return maxCopyA
		case ops.CopyRHS, ops.EdgeNull:
			return maxCopyB
		case ops.EdgeAdd:
			return maxBin(func(x, y float32) float32 { return x + y })
		case ops.EdgeSub:
			return maxBin(func(x, y float32) float32 { return x - y })
		case ops.EdgeMul:
			return maxBin(func(x, y float32) float32 { return x * y })
		case ops.EdgeDiv:
			return maxBin(func(x, y float32) float32 { return x / y })
		}
	case ops.GatherMin:
		switch eop {
		case ops.CopyLHS:
			return minCopyA
		case ops.CopyRHS, ops.EdgeNull:
			return minCopyB
		case ops.EdgeAdd:
			return minBin(func(x, y float32) float32 { return x + y })
		case ops.EdgeSub:
			return minBin(func(x, y float32) float32 { return x - y })
		case ops.EdgeMul:
			return minBin(func(x, y float32) float32 { return x * y })
		case ops.EdgeDiv:
			return minBin(func(x, y float32) float32 { return x / y })
		}
	default: // non-reducing gather: store the edge value (message creation)
		switch eop {
		case ops.CopyLHS:
			return storeCopyA
		case ops.CopyRHS, ops.EdgeNull:
			return storeCopyB
		case ops.EdgeAdd:
			return storeAdd
		case ops.EdgeSub:
			return storeSub
		case ops.EdgeMul:
			return storeMul
		case ops.EdgeDiv:
			return storeDiv
		}
	}
	return nil
}

// --- store class (message creation: acc = edge value) ---

func storeCopyA(acc, a, b []float32) {
	if len(a) == 1 {
		v := a[0]
		for j := range acc {
			acc[j] = v
		}
		return
	}
	copy(acc, a)
}

func storeCopyB(acc, a, b []float32) {
	if len(b) == 1 {
		v := b[0]
		for j := range acc {
			acc[j] = v
		}
		return
	}
	copy(acc, b)
}

func storeAdd(acc, a, b []float32) { storeBin(acc, a, b, func(x, y float32) float32 { return x + y }) }
func storeSub(acc, a, b []float32) { storeBin(acc, a, b, func(x, y float32) float32 { return x - y }) }

func storeMul(acc, a, b []float32) {
	switch {
	case len(a) == len(acc) && len(b) == len(acc):
		a, b = a[:len(acc)], b[:len(acc)]
		for j := range acc {
			acc[j] = a[j] * b[j]
		}
	case len(b) == 1 && len(a) == len(acc):
		w := b[0]
		a = a[:len(acc)]
		for j := range acc {
			acc[j] = a[j] * w
		}
	default:
		storeBin(acc, a, b, func(x, y float32) float32 { return x * y })
	}
}

func storeDiv(acc, a, b []float32) {
	switch {
	case len(a) == len(acc) && len(b) == len(acc):
		a, b = a[:len(acc)], b[:len(acc)]
		for j := range acc {
			acc[j] = a[j] / b[j]
		}
	case len(b) == 1 && len(a) == len(acc):
		inv := b[0]
		a = a[:len(acc)]
		for j := range acc {
			acc[j] = a[j] / inv
		}
	default:
		storeBin(acc, a, b, func(x, y float32) float32 { return x / y })
	}
}

// storeBin is the broadcast-general binary store.
func storeBin(acc, a, b []float32, f func(x, y float32) float32) {
	av, bv := float32(0), float32(0)
	aScalar, bScalar := len(a) == 1, len(b) == 1
	if aScalar {
		av = a[0]
	}
	if bScalar {
		bv = b[0]
	}
	for j := range acc {
		x, y := av, bv
		if !aScalar {
			x = a[j]
		}
		if !bScalar {
			y = b[j]
		}
		acc[j] = f(x, y)
	}
}

// --- sum class (also mean; division is a post-pass) ---

func sumCopyA(acc, a, b []float32) {
	if len(a) == 1 {
		v := a[0]
		for j := range acc {
			acc[j] += v
		}
		return
	}
	a = a[:len(acc)]
	for j := range acc {
		acc[j] += a[j]
	}
}

func sumCopyB(acc, a, b []float32) {
	if len(b) == 1 {
		v := b[0]
		for j := range acc {
			acc[j] += v
		}
		return
	}
	b = b[:len(acc)]
	for j := range acc {
		acc[j] += b[j]
	}
}

func sumAdd(acc, a, b []float32) {
	if len(a) == len(acc) && len(b) == len(acc) {
		a, b = a[:len(acc)], b[:len(acc)]
		for j := range acc {
			acc[j] += a[j] + b[j]
		}
		return
	}
	combineBin(acc, a, b, func(x, y float32) float32 { return x + y }, addInto)
}

func sumSub(acc, a, b []float32) {
	if len(a) == len(acc) && len(b) == len(acc) {
		a, b = a[:len(acc)], b[:len(acc)]
		for j := range acc {
			acc[j] += a[j] - b[j]
		}
		return
	}
	combineBin(acc, a, b, func(x, y float32) float32 { return x - y }, addInto)
}

func sumMul(acc, a, b []float32) {
	switch {
	case len(a) == len(acc) && len(b) == len(acc):
		a, b = a[:len(acc)], b[:len(acc)]
		for j := range acc {
			acc[j] += a[j] * b[j]
		}
	case len(b) == 1 && len(a) == len(acc):
		// The hot GCN path: full-width source features scaled by a scalar
		// edge weight.
		w := b[0]
		a = a[:len(acc)]
		for j := range acc {
			acc[j] += a[j] * w
		}
	case len(a) == 1 && len(b) == len(acc):
		w := a[0]
		b = b[:len(acc)]
		for j := range acc {
			acc[j] += w * b[j]
		}
	default:
		combineBin(acc, a, b, func(x, y float32) float32 { return x * y }, addInto)
	}
}

func sumDiv(acc, a, b []float32) {
	switch {
	case len(a) == len(acc) && len(b) == len(acc):
		a, b = a[:len(acc)], b[:len(acc)]
		for j := range acc {
			acc[j] += a[j] / b[j]
		}
	case len(b) == 1 && len(a) == len(acc):
		d := b[0]
		a = a[:len(acc)]
		for j := range acc {
			acc[j] += a[j] / d
		}
	default:
		combineBin(acc, a, b, func(x, y float32) float32 { return x / y }, addInto)
	}
}

// --- max / min classes ---

func maxCopyA(acc, a, b []float32) { maxCopy(acc, a) }
func maxCopyB(acc, a, b []float32) { maxCopy(acc, b) }
func minCopyA(acc, a, b []float32) { minCopy(acc, a) }
func minCopyB(acc, a, b []float32) { minCopy(acc, b) }

func maxCopy(acc, src []float32) {
	if len(src) == 1 {
		v := src[0]
		for j := range acc {
			if v > acc[j] {
				acc[j] = v
			}
		}
		return
	}
	src = src[:len(acc)]
	for j := range acc {
		if src[j] > acc[j] {
			acc[j] = src[j]
		}
	}
}

func minCopy(acc, src []float32) {
	if len(src) == 1 {
		v := src[0]
		for j := range acc {
			if v < acc[j] {
				acc[j] = v
			}
		}
		return
	}
	src = src[:len(acc)]
	for j := range acc {
		if src[j] < acc[j] {
			acc[j] = src[j]
		}
	}
}

func maxBin(f func(x, y float32) float32) fusedRow {
	return func(acc, a, b []float32) { combineBin(acc, a, b, f, maxInto) }
}

func minBin(f func(x, y float32) float32) fusedRow {
	return func(acc, a, b []float32) { combineBin(acc, a, b, f, minInto) }
}

// combineBin is the broadcast-general binary edge op with a pluggable
// combiner; only non-hot shapes land here.
func combineBin(acc, a, b []float32, f func(x, y float32) float32, into func(acc []float32, j int, v float32)) {
	av, bv := float32(0), float32(0)
	aScalar, bScalar := len(a) == 1, len(b) == 1
	if aScalar {
		av = a[0]
	}
	if bScalar {
		bv = b[0]
	}
	for j := range acc {
		x, y := av, bv
		if !aScalar {
			x = a[j]
		}
		if !bScalar {
			y = b[j]
		}
		into(acc, j, f(x, y))
	}
}

func addInto(acc []float32, j int, v float32) { acc[j] += v }

func maxInto(acc []float32, j int, v float32) {
	if v > acc[j] {
		acc[j] = v
	}
}

func minInto(acc []float32, j int, v float32) {
	if v < acc[j] {
		acc[j] = v
	}
}
