// Package schedule enumerates uGrapher's parallelization-strategy space and
// provides the grid-search tuner the paper validates its predictor against
// (§5.4, Fig. 12). The full space — 4 basic strategies x grouping x tiling
// parameters — is explored by simulating each candidate kernel and ranking
// by predicted cycles.
package schedule

import (
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
)

// GroupValues and TileValues are the power-of-two knob settings that appear
// throughout the paper's Table 9 and Fig. 18.
var (
	GroupValues = []int{1, 2, 4, 8, 16, 32, 64}
	TileValues  = []int{1, 2, 4, 8, 16, 32, 64}
)

// Space returns the full candidate schedule list: 4 strategies x 7 grouping
// x 7 tiling values = 196 schedules.
func Space() []core.Schedule {
	out := make([]core.Schedule, 0, len(core.Strategies)*len(GroupValues)*len(TileValues))
	for _, s := range core.Strategies {
		for _, g := range GroupValues {
			for _, t := range TileValues {
				out = append(out, core.Schedule{Strategy: s, Group: g, Tile: t})
			}
		}
	}
	return out
}

// BasicSpace returns only the four basic strategies (Group=1, Tile=1), the
// configuration Fig. 7 and Fig. 17 contrast against the tuned optimum.
func BasicSpace() []core.Schedule {
	out := make([]core.Schedule, len(core.Strategies))
	for i, s := range core.Strategies {
		out[i] = core.Schedule{Strategy: s, Group: 1, Tile: 1}
	}
	return out
}

// Task identifies one tuning problem: a graph operator on a dataset with a
// feature width, on a device.
type Task struct {
	Graph *graph.Graph
	Op    ops.OpInfo
	// Feat is the output feature width; ACols/BCols the operand widths
	// (1 = broadcast scalar, 0 = absent).
	Feat, ACols, BCols int
	Device             *gpu.Device
}

// Widths fills ACols/BCols from the operator's natural shape.
func (t Task) Widths(widthOneB bool) Task {
	t.Feat, t.ACols, t.BCols = core.OperandWidths(t.Op, t.Feat, widthOneB)
	return t
}

// Candidate is one evaluated schedule.
type Candidate struct {
	Schedule core.Schedule
	Metrics  gpu.Metrics
}

// Evaluate simulates a single schedule for the task.
func Evaluate(t Task, s core.Schedule, opts ...gpu.Option) (Candidate, error) {
	m, err := core.Estimate(t.Graph, t.Op, t.Feat, t.ACols, t.BCols, s, t.Device, opts...)
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{Schedule: s, Metrics: m}, nil
}

// GridSearch evaluates every schedule in space (default: Space()) and
// returns the candidates sorted by ascending cycles. Schedules that fail to
// compile for the operator are skipped.
func GridSearch(t Task, space []core.Schedule, opts ...gpu.Option) []Candidate {
	if space == nil {
		space = Space()
	}
	out := make([]Candidate, 0, len(space))
	for _, s := range space {
		c, err := Evaluate(t, s, opts...)
		if err != nil {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Metrics.Cycles < out[j].Metrics.Cycles })
	return out
}

// Best returns the grid-search winner, or an error if nothing evaluated.
func Best(t Task, space []core.Schedule, opts ...gpu.Option) (Candidate, bool) {
	cands := GridSearch(t, space, opts...)
	if len(cands) == 0 {
		return Candidate{}, false
	}
	return cands[0], true
}

// PrunedSpace trims knob values that cannot help the task: grouping beyond
// items/32 (launch would collapse below one wave) and tiling beyond the
// feature chunk count (all extra units idle). This keeps grid search
// practical on big graphs without excluding any winner the full space would
// find — over-tiled/over-grouped schedules are strictly dominated.
func PrunedSpace(t Task) []core.Schedule {
	chunks := (t.Feat + 31) / 32
	if chunks < 1 {
		chunks = 1
	}
	maxTile := 1
	for _, v := range TileValues {
		if v <= chunks {
			maxTile = v
		}
	}
	var out []core.Schedule
	for _, s := range core.Strategies {
		items := t.Graph.NumVertices()
		if !s.VertexParallel() {
			items = t.Graph.NumEdges()
		}
		// Stop growing the group once the launch collapses below one block
		// per SM; coarser groupings are strictly dominated.
		for _, g := range GroupValues {
			units := (items + g - 1) / g
			if g > 1 && units < t.Device.NumSMs {
				break
			}
			for _, ti := range TileValues {
				if ti > maxTile {
					break
				}
				out = append(out, core.Schedule{Strategy: s, Group: g, Tile: ti})
			}
		}
	}
	return out
}

// cacheKey memoises tuning results for repeated (graph, op, feat, device)
// lookups within a process — the paper's point that tuning happens once
// before inference.
type cacheKey struct {
	g      *graph.Graph
	opName string
	edgeOp ops.EdgeOp
	gather ops.GatherOp
	feat   int
	aCols  int
	bCols  int
	dev    string
}

// Tuner performs cached grid search.
type Tuner struct {
	mu    sync.Mutex
	cache map[cacheKey]Candidate
	// Opts are forwarded to every simulation.
	Opts []gpu.Option
}

// NewTuner returns an empty cached tuner.
func NewTuner(opts ...gpu.Option) *Tuner {
	return &Tuner{cache: make(map[cacheKey]Candidate), Opts: opts}
}

// Tune returns the best schedule for the task, using the pruned space, with
// memoisation.
func (tu *Tuner) Tune(t Task) (Candidate, bool) {
	key := cacheKey{
		g: t.Graph, opName: t.Op.Name, edgeOp: t.Op.EdgeOp, gather: t.Op.GatherOp,
		feat: t.Feat, aCols: t.ACols, bCols: t.BCols, dev: t.Device.Name,
	}
	tu.mu.Lock()
	if c, ok := tu.cache[key]; ok {
		tu.mu.Unlock()
		return c, true
	}
	tu.mu.Unlock()
	best, ok := Best(t, PrunedSpace(t), tu.Opts...)
	if !ok {
		return Candidate{}, false
	}
	tu.mu.Lock()
	tu.cache[key] = best
	tu.mu.Unlock()
	return best, true
}

// Speedup returns how much faster best is than the given baseline schedule.
func Speedup(t Task, baseline core.Schedule, best Candidate, opts ...gpu.Option) float64 {
	b, err := Evaluate(t, baseline, opts...)
	if err != nil {
		return math.NaN()
	}
	return b.Metrics.Cycles / best.Metrics.Cycles
}
