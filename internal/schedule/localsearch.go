package schedule

import (
	"repro/internal/core"
	"repro/internal/gpu"
)

// Local search: the paper notes exhaustive grid search over the ~10^4-point
// space "would require days"; its answer is the learned predictor. A
// complementary cheap option is hill climbing over the knob lattice, which
// reaches near-optimal schedules in a few dozen simulations — useful when
// no trained model is at hand and full grid search is too slow.

// LocalSearchResult reports the climb.
type LocalSearchResult struct {
	Best        Candidate
	Evaluations int
	Steps       int
}

// neighbors enumerates the one-knob moves from s: switch strategy (keeping
// knobs), halve/double grouping, halve/double tiling.
func neighbors(s core.Schedule) []core.Schedule {
	var out []core.Schedule
	for _, st := range core.Strategies {
		if st != s.Strategy {
			out = append(out, core.Schedule{Strategy: st, Group: s.Group, Tile: s.Tile})
		}
	}
	if s.Group > 1 {
		out = append(out, core.Schedule{Strategy: s.Strategy, Group: s.Group / 2, Tile: s.Tile})
	}
	if s.Group < 64 {
		out = append(out, core.Schedule{Strategy: s.Strategy, Group: s.Group * 2, Tile: s.Tile})
	}
	if s.Tile > 1 {
		out = append(out, core.Schedule{Strategy: s.Strategy, Group: s.Group, Tile: s.Tile / 2})
	}
	if s.Tile < 64 {
		out = append(out, core.Schedule{Strategy: s.Strategy, Group: s.Group, Tile: s.Tile * 2})
	}
	return out
}

// LocalSearch hill-climbs from start until no neighbour improves, with an
// evaluation budget (0 = unlimited). Deterministic: neighbours are visited
// in a fixed order and ties keep the incumbent.
func LocalSearch(t Task, start core.Schedule, budget int, opts ...gpu.Option) (LocalSearchResult, error) {
	evalCount := 0
	seen := map[core.Schedule]float64{}
	eval := func(s core.Schedule) (float64, error) {
		if c, ok := seen[s]; ok {
			return c, nil
		}
		cand, err := Evaluate(t, s, opts...)
		if err != nil {
			return 0, err
		}
		evalCount++
		seen[s] = cand.Metrics.Cycles
		return cand.Metrics.Cycles, nil
	}

	cur := start
	curCost, err := eval(cur)
	if err != nil {
		return LocalSearchResult{}, err
	}
	steps := 0
	for {
		improved := false
		for _, nb := range neighbors(cur) {
			if budget > 0 && evalCount >= budget {
				break
			}
			cost, err := eval(nb)
			if err != nil {
				continue // invalid neighbour for this operator; skip
			}
			if cost < curCost*0.999 {
				cur, curCost = nb, cost
				improved = true
				steps++
				break // greedy first-improvement
			}
		}
		if !improved || (budget > 0 && evalCount >= budget) {
			break
		}
	}
	final, err := Evaluate(t, cur, opts...)
	if err != nil {
		return LocalSearchResult{}, err
	}
	return LocalSearchResult{Best: final, Evaluations: evalCount, Steps: steps}, nil
}
