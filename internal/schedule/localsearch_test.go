package schedule

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
)

func TestNeighborsValid(t *testing.T) {
	s := core.Schedule{Strategy: core.WarpEdge, Group: 8, Tile: 4}
	nbs := neighbors(s)
	// 3 strategy switches + 2 group moves + 2 tile moves.
	if len(nbs) != 7 {
		t.Fatalf("got %d neighbours, want 7", len(nbs))
	}
	for _, nb := range nbs {
		if err := nb.Validate(); err != nil {
			t.Errorf("invalid neighbour %v: %v", nb, err)
		}
		if nb == s {
			t.Errorf("neighbour equals start")
		}
	}
	// Boundary knobs lose the shrinking moves.
	edge := core.Schedule{Strategy: core.ThreadVertex, Group: 1, Tile: 64}
	for _, nb := range neighbors(edge) {
		if nb.Group < 1 || nb.Tile > 64 {
			t.Errorf("out-of-range neighbour %v", nb)
		}
	}
}

func TestLocalSearchImproves(t *testing.T) {
	task := smallTask(t, true)
	start := core.Schedule{Strategy: core.ThreadVertex, Group: 64, Tile: 1} // deliberately poor
	res, err := LocalSearch(task, start, 0, gpu.WithMaxSampledBlocks(32))
	if err != nil {
		t.Fatal(err)
	}
	startCand, err := Evaluate(task, start, gpu.WithMaxSampledBlocks(32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Metrics.Cycles >= startCand.Metrics.Cycles {
		t.Errorf("local search did not improve: %v -> %v",
			startCand.Metrics.Cycles, res.Best.Metrics.Cycles)
	}
	if res.Evaluations == 0 || res.Steps == 0 {
		t.Errorf("suspicious search stats: %+v", res)
	}
}

func TestLocalSearchNearGridBest(t *testing.T) {
	task := smallTask(t, false)
	res, err := LocalSearch(task, core.DefaultSchedule, 0, gpu.WithMaxSampledBlocks(32))
	if err != nil {
		t.Fatal(err)
	}
	grid, ok := Best(task, PrunedSpace(task), gpu.WithMaxSampledBlocks(32))
	if !ok {
		t.Fatal("grid failed")
	}
	ratio := res.Best.Metrics.Cycles / grid.Metrics.Cycles
	if ratio > 1.5 {
		t.Errorf("local search %.2fx worse than grid (%v vs %v)",
			ratio, res.Best.Schedule, grid.Schedule)
	}
	full := len(PrunedSpace(task))
	if res.Evaluations >= full {
		t.Errorf("local search used %d evals, grid space is only %d", res.Evaluations, full)
	}
}

func TestLocalSearchBudget(t *testing.T) {
	task := smallTask(t, true)
	res, err := LocalSearch(task, core.DefaultSchedule, 3, gpu.WithMaxSampledBlocks(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > 4 { // budget 3 + the mandatory start evaluation overlap
		t.Errorf("budget exceeded: %d evaluations", res.Evaluations)
	}
}
