package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/gpu"
	"repro/internal/graph"
	"repro/internal/ops"
)

func TestSpaceSize(t *testing.T) {
	if got := len(Space()); got != 4*7*7 {
		t.Fatalf("space size = %d, want 196", got)
	}
	if got := len(BasicSpace()); got != 4 {
		t.Fatalf("basic space = %d", got)
	}
	for _, s := range Space() {
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid schedule in space: %v", err)
		}
	}
}

func smallTask(t *testing.T, skewed bool) Task {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	b := graph.NewBuilder(2000)
	for i := 0; i < 20000; i++ {
		src := int32(rng.Intn(2000))
		dst := int32(rng.Intn(2000))
		if skewed && rng.Float64() < 0.7 {
			dst = int32(rng.Intn(20))
		}
		b.AddEdge(src, dst)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return Task{Graph: g, Op: ops.AggrSum, Feat: 32, ACols: 32, Device: gpu.V100()}
}

func TestGridSearchSorted(t *testing.T) {
	cands := GridSearch(smallTask(t, false), BasicSpace())
	if len(cands) != 4 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Metrics.Cycles > cands[i].Metrics.Cycles {
			t.Fatal("not sorted by cycles")
		}
	}
}

func TestBest(t *testing.T) {
	c, ok := Best(smallTask(t, false), BasicSpace())
	if !ok {
		t.Fatal("no best found")
	}
	if c.Metrics.Cycles <= 0 {
		t.Fatal("best has no cost")
	}
	if _, ok := Best(smallTask(t, false), []core.Schedule{}); ok {
		t.Fatal("empty space should find nothing")
	}
}

func TestGridSearchSkipsInvalid(t *testing.T) {
	task := smallTask(t, false)
	space := []core.Schedule{{Strategy: core.Strategy(9), Group: 1, Tile: 1}, core.DefaultSchedule}
	cands := GridSearch(task, space)
	if len(cands) != 1 {
		t.Fatalf("invalid schedule should be skipped, got %d candidates", len(cands))
	}
}

func TestPrunedSpaceSubset(t *testing.T) {
	task := smallTask(t, false)
	pruned := PrunedSpace(task)
	if len(pruned) == 0 || len(pruned) > len(Space()) {
		t.Fatalf("pruned size %d out of range", len(pruned))
	}
	// F=32 => 1 chunk => tiling beyond 1 pruned.
	for _, s := range pruned {
		if s.Tile > 1 {
			t.Fatalf("tile %d should be pruned for F=32", s.Tile)
		}
	}
	// Larger features admit more tiling.
	task.Feat, task.ACols = 256, 256
	sawTile := 0
	for _, s := range PrunedSpace(task) {
		if s.Tile > sawTile {
			sawTile = s.Tile
		}
	}
	if sawTile < 8 {
		t.Fatalf("expected tiling up to 8 for F=256, saw max %d", sawTile)
	}
}

// TestPrunedMatchesFullOnSmallTask: pruning must not lose the winner.
func TestPrunedMatchesFullOnSmallTask(t *testing.T) {
	task := smallTask(t, true)
	full, _ := Best(task, Space())
	pruned, _ := Best(task, PrunedSpace(task))
	// Allow a small tolerance: pruned may pick an equal-cost sibling.
	if pruned.Metrics.Cycles > full.Metrics.Cycles*1.05 {
		t.Fatalf("pruned winner %v (%v cycles) much worse than full winner %v (%v cycles)",
			pruned.Schedule, pruned.Metrics.Cycles, full.Schedule, full.Metrics.Cycles)
	}
}

func TestTunerCaches(t *testing.T) {
	task := smallTask(t, false)
	tu := NewTuner()
	c1, ok := tu.Tune(task)
	if !ok {
		t.Fatal("tune failed")
	}
	c2, _ := tu.Tune(task)
	if c1.Schedule != c2.Schedule || c1.Metrics.Cycles != c2.Metrics.Cycles {
		t.Fatal("cache returned different result")
	}
}

func TestSpeedup(t *testing.T) {
	task := smallTask(t, true)
	best, _ := Best(task, PrunedSpace(task))
	s := Speedup(task, core.Schedule{Strategy: core.ThreadVertex, Group: 1, Tile: 1}, best)
	if s < 1 {
		t.Fatalf("tuned schedule should not be slower than a fixed baseline, speedup=%v", s)
	}
}

// TestOptimalStrategyVaries is the Fig. 7 sanity check: across datasets with
// different shapes, the winning basic strategy is not constant.
func TestOptimalStrategyVaries(t *testing.T) {
	winners := map[core.Strategy]bool{}
	for _, abbr := range []string{"CO", "PR", "AR"} {
		g, _, err := datasets.Load(abbr)
		if err != nil {
			t.Fatal(err)
		}
		for _, feat := range []int{8, 64} {
			task := Task{Graph: g, Op: ops.AggrSum, Feat: feat, ACols: feat, Device: gpu.V100()}
			best, ok := Best(task, BasicSpace(), gpu.WithMaxSampledBlocks(64))
			if !ok {
				t.Fatal("no winner")
			}
			winners[best.Schedule.Strategy] = true
		}
	}
	if len(winners) < 2 {
		t.Errorf("expected the optimal basic strategy to vary across datasets/feature sizes, got %v", winners)
	}
}

// TestSkewPrefersEdgeParallel: on a heavily skewed graph, vertex-parallel
// mapping suffers divergence/imbalance, so an edge-mapped strategy should
// win (the paper's Fig. 2/3 motivation).
func TestSkewPrefersEdgeParallel(t *testing.T) {
	best, ok := Best(smallTask(t, true), BasicSpace())
	if !ok {
		t.Fatal("no winner")
	}
	if best.Schedule.Strategy.VertexParallel() {
		t.Errorf("skewed graph picked %v; want an edge-parallel strategy", best.Schedule)
	}
}

func TestTaskWidths(t *testing.T) {
	task := smallTask(t, false)
	task.Op = ops.WeightedAggrSum
	task.Feat = 64
	got := task.Widths(true)
	if got.Feat != 64 || got.ACols != 64 || got.BCols != 1 {
		t.Errorf("Widths = (%d,%d,%d), want (64,64,1)", got.Feat, got.ACols, got.BCols)
	}
	task.Op = ops.AggrSum
	got = task.Widths(false)
	if got.ACols != 64 || got.BCols != 0 {
		t.Errorf("unary Widths = (%d,%d)", got.ACols, got.BCols)
	}
}

func TestEvaluateInvalidSchedule(t *testing.T) {
	task := smallTask(t, false)
	if _, err := Evaluate(task, core.Schedule{Strategy: core.Strategy(9), Group: 1, Tile: 1}); err == nil {
		t.Error("invalid schedule should error")
	}
}

func TestGridSearchNilSpaceUsesFull(t *testing.T) {
	task := smallTask(t, false)
	cands := GridSearch(task, nil, gpu.WithMaxSampledBlocks(8))
	if len(cands) != len(Space()) {
		t.Errorf("nil space should use the full space: %d vs %d", len(cands), len(Space()))
	}
}
