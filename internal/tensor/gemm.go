package tensor

import "fmt"

// Cache-blocked GEMM with a packed column-panel layout, the dense half of
// the fusion-region work (ROADMAP "Raw speed"). The naive MatMulInto walk
// streams B row by row and keeps the whole N-wide output row as the
// accumulation target; for the wide weight matrices GEMM-dominated models
// use (Sage's hidden width 256, DESIGN.md §2) that output row no longer
// fits in registers, so every partial sum round-trips through memory.
//
// The blocked path repacks B once — weights are compile-time constants, so
// the pack cost is amortised over every subsequent Run — into column panels
// of gemmPanelN columns laid out k-major: panel p holds
//
//	b[0][p*8 .. p*8+7], b[1][p*8 .. p*8+7], ..., b[K-1][...]
//
// contiguously. GemmPackedInto then computes one output row × one panel at
// a time with eight explicit register accumulators and a fully unrolled
// inner body: B is read as a single forward stream (hardware-prefetch
// friendly), and each output element is written exactly once.
//
// Accumulation order is deliberately identical to MatMulInto — ascending k
// with the same zero-skip on a[i][k] — so the two paths produce
// bit-identical results and the compiled program can switch between them
// without perturbing the golden compiled≡interpreted comparisons.
//
// Shape-mismatch panics below are invariant panics (see dense_ops.go's file
// header): shapes come from model code and the compile-time packer, never
// from user input.

// gemmPanelN is the packed panel width: eight float32 columns, matching one
// 32-byte half-line per k step and the eight accumulator registers of the
// unrolled kernel.
const gemmPanelN = 8

// PackedB is a weight matrix repacked into k-major column panels for
// GemmPackedInto. The final panel is zero-padded when N is not a multiple
// of the panel width; padded lanes are computed and discarded.
type PackedB struct {
	// K and N are the logical (unpacked) dimensions of B.
	K, N int
	// panels holds ceil(N/gemmPanelN) panels of K*gemmPanelN floats each.
	panels []float32
}

// PackB repacks b (K×N, row-major) into column panels. Packing allocates;
// it is a compile-time operation, never called on a Run path.
func PackB(b *Dense) *PackedB {
	k, n := b.Rows, b.Cols
	numPanels := (n + gemmPanelN - 1) / gemmPanelN
	pb := &PackedB{K: k, N: n, panels: make([]float32, numPanels*k*gemmPanelN)}
	for p := 0; p < numPanels; p++ {
		base := p * k * gemmPanelN
		j0 := p * gemmPanelN
		width := n - j0
		if width > gemmPanelN {
			width = gemmPanelN
		}
		for kk := 0; kk < k; kk++ {
			brow := b.Data[kk*n+j0 : kk*n+j0+width]
			dst := pb.panels[base+kk*gemmPanelN : base+kk*gemmPanelN+width]
			copy(dst, brow)
		}
	}
	return pb
}

// GemmPackedInto computes out = a @ B for the packed B, without allocating.
// out must not alias a. Results are bit-identical to
// MatMulInto(out, a, unpackedB): per output element the partial products
// accumulate in the same ascending-k order with the same zero-skip.
func GemmPackedInto(out, a *Dense, pb *PackedB) {
	if a.Cols != pb.K {
		// invariant: shapes come from model code and the compile-time packer,
		// never from user input; a mismatch is a compiler bug.
		panic(fmt.Sprintf("tensor: packed matmul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, pb.K, pb.N))
	}
	if out.Rows != a.Rows || out.Cols != pb.N {
		// invariant: the buffer planner sizes out from the value table; a
		// mismatch here means verification failed open.
		panic(fmt.Sprintf("tensor: packed matmul output %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, pb.N))
	}
	k, n := pb.K, pb.N
	numPanels := (n + gemmPanelN - 1) / gemmPanelN
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for p := 0; p < numPanels; p++ {
			panel := pb.panels[p*k*gemmPanelN : (p+1)*k*gemmPanelN]
			var acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7 float32
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				row := panel[kk*gemmPanelN : kk*gemmPanelN+gemmPanelN : kk*gemmPanelN+gemmPanelN]
				acc0 += av * row[0]
				acc1 += av * row[1]
				acc2 += av * row[2]
				acc3 += av * row[3]
				acc4 += av * row[4]
				acc5 += av * row[5]
				acc6 += av * row[6]
				acc7 += av * row[7]
			}
			j0 := p * gemmPanelN
			width := n - j0
			if width >= gemmPanelN {
				dst := orow[j0 : j0+gemmPanelN : j0+gemmPanelN]
				dst[0], dst[1], dst[2], dst[3] = acc0, acc1, acc2, acc3
				dst[4], dst[5], dst[6], dst[7] = acc4, acc5, acc6, acc7
				continue
			}
			// Tail panel: store only the real columns; padded lanes held zeros,
			// so their accumulators are discarded.
			accs := [gemmPanelN]float32{acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7}
			copy(orow[j0:j0+width], accs[:width])
		}
	}
}

// PackedFloats reports the packed storage size in float32 elements (for
// compile stats and tests).
func (pb *PackedB) PackedFloats() int { return len(pb.panels) }
