package tensor

import (
	"fmt"
	"math"
)

// This file implements the dense neural-network operators GNN models need
// around graph operators: linear transforms, activations, normalisation.
// They execute functionally; their simulated GPU cost comes from
// internal/gpu's dense cost model so end-to-end experiments (Fig. 13-15)
// account for the GEMM share of each model.
//
// Shape-mismatch panics in this file are invariant panics, not
// input-reachable errors: operand shapes are fixed by model code and the
// compiled program's buffer planner, never by user-supplied graph or
// feature data, so a mismatch is a programming bug the process should not
// limp past. User-reachable shape problems are caught earlier, as errors,
// by core's operand validation.

// MatMul returns a @ b for a: m×k, b: k×n. It panics on shape mismatch — an
// invariant violation (shapes are programmer-controlled, not data-dependent).
func MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulInto computes out = a @ b without allocating, for a: m×k, b: k×n,
// out: m×n. out must not alias a or b. The inner loop mirrors MatMul exactly
// (including the zero-skip) so both produce bit-identical results. Shape
// mismatch is an invariant panic (see the file header).
func MatMulInto(out, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul output %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	out.Zero()
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// AddScaledInto computes out = a + s*b element-wise without allocating.
// out may alias a (each element is read before it is written). Shape
// mismatch is an invariant panic (see the file header).
func AddScaledInto(out, a, b *Dense, s float32) {
	if a.Rows != b.Rows || a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != a.Cols {
		panic("tensor: add-scaled shape mismatch")
	}
	for i := range a.Data {
		out.Data[i] = a.Data[i] + s*b.Data[i]
	}
}

// ConcatInto writes the column-wise concatenation [a | b] into out without
// allocating. out must not alias a or b. Shape mismatch is an invariant
// panic (see the file header).
func ConcatInto(out, a, b *Dense) {
	if a.Rows != b.Rows || out.Rows != a.Rows || out.Cols != a.Cols+b.Cols {
		panic("tensor: concat shape mismatch")
	}
	for r := 0; r < a.Rows; r++ {
		copy(out.Row(r)[:a.Cols], a.Row(r))
		copy(out.Row(r)[a.Cols:], b.Row(r))
	}
}

// RowMeanInto writes each row's mean of t into the n×1 tensor out without
// allocating (sum first, then one multiply by 1/cols — the order GAT's
// head-merge uses, so results match the interpreter bit for bit). out must
// not alias t. Shape mismatch is an invariant panic (see the file header).
func RowMeanInto(out, t *Dense) {
	if out.Rows != t.Rows || out.Cols != 1 {
		panic("tensor: row-mean output must be Rows x 1")
	}
	inv := 1 / float32(t.Cols)
	for r := 0; r < t.Rows; r++ {
		var s float32
		for _, v := range t.Row(r) {
			s += v
		}
		out.Data[r] = s * inv
	}
}

// AddBias adds the length-Cols bias vector to every row of t in place. A
// wrong bias length is an invariant panic (see the file header).
func AddBias(t *Dense, bias []float32) {
	if len(bias) != t.Cols {
		panic(fmt.Sprintf("tensor: bias length %d != cols %d", len(bias), t.Cols))
	}
	for r := 0; r < t.Rows; r++ {
		row := t.Row(r)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// ReLU applies max(0, x) in place.
func ReLU(t *Dense) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// LeakyReLU applies x>=0 ? x : alpha*x in place (GAT's attention activation).
func LeakyReLU(t *Dense, alpha float32) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = alpha * v
		}
	}
}

// Exp applies e^x element-wise in place.
func Exp(t *Dense) {
	for i, v := range t.Data {
		t.Data[i] = float32(math.Exp(float64(v)))
	}
}

// Add returns a + b element-wise. Shape mismatch is an invariant panic (see
// the file header).
func Add(a, b *Dense) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: add shape mismatch")
	}
	out := NewDense(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Scale multiplies every element by s in place.
func Scale(t *Dense, s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Concat returns the column-wise concatenation [a | b]. A row-count
// mismatch is an invariant panic (see the file header).
func Concat(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic("tensor: concat row mismatch")
	}
	out := NewDense(a.Rows, a.Cols+b.Cols)
	for r := 0; r < a.Rows; r++ {
		copy(out.Row(r)[:a.Cols], a.Row(r))
		copy(out.Row(r)[a.Cols:], b.Row(r))
	}
	return out
}

// RowSum returns the per-row sum as an n×1 tensor.
func RowSum(t *Dense) *Dense {
	out := NewDense(t.Rows, 1)
	for r := 0; r < t.Rows; r++ {
		var s float32
		for _, v := range t.Row(r) {
			s += v
		}
		out.Data[r] = s
	}
	return out
}

// DivRows divides each row of t in place by the corresponding scalar in
// denom (an n×1 tensor); rows whose denominator is 0 are left as zeros,
// matching mean-aggregation over vertices with no incoming edges. A wrong
// denominator shape is an invariant panic (see the file header).
func DivRows(t *Dense, denom *Dense) {
	if denom.Rows != t.Rows || denom.Cols != 1 {
		panic("tensor: DivRows denominator must be Rows x 1")
	}
	for r := 0; r < t.Rows; r++ {
		d := denom.Data[r]
		row := t.Row(r)
		if d == 0 {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		inv := 1 / d
		for j := range row {
			row[j] *= inv
		}
	}
}

// GEMMFlops returns the floating-point operation count of MatMul(a, b),
// used by the dense cost model.
func GEMMFlops(m, k, n int) int64 { return 2 * int64(m) * int64(k) * int64(n) }
