package tensor

import "fmt"

// Arena is one contiguous float32 slab that backs many Dense views with
// overlapping lifetimes. Compiled model programs allocate one arena at
// compile time, carve a view per intermediate value out of the planner's
// slot offsets, and then run with zero steady-state allocations — views
// alias the slab, so writing one value reuses the storage of values whose
// live ranges have ended.
type Arena struct {
	buf []float32
}

// NewArena allocates a zeroed arena of n floats. The size comes from the
// buffer planner's slot arithmetic, never from user input, so a negative
// value is an invariant panic (a planner bug).
func NewArena(n int) *Arena {
	if n < 0 {
		panic(fmt.Sprintf("tensor: negative arena size %d", n))
	}
	return &Arena{buf: make([]float32, n)}
}

// Floats returns the arena capacity in float32 elements.
func (a *Arena) Floats() int { return len(a.buf) }

// View returns a rows×cols Dense aliasing the arena at the given float
// offset. Views may overlap; the caller (the buffer planner) is responsible
// for ensuring overlapping views are never simultaneously live. An
// out-of-bounds view is an invariant panic: offsets are computed by the
// planner from the same sizes it allocated the arena with.
func (a *Arena) View(offset, rows, cols int) *Dense {
	need := rows * cols
	if offset < 0 || offset+need > len(a.buf) {
		panic(fmt.Sprintf("tensor: arena view [%d, %d) out of bounds (arena %d floats)",
			offset, offset+need, len(a.buf)))
	}
	return FromSlice(rows, cols, a.buf[offset:offset+need])
}
