package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Null: "Null", SrcV: "Src_V", DstV: "Dst_V", EdgeK: "Edge"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string")
	}
	if !SrcV.IsVertex() || !DstV.IsVertex() || EdgeK.IsVertex() || Null.IsVertex() {
		t.Error("IsVertex misclassifies")
	}
}

func TestDenseBasics(t *testing.T) {
	d := NewDense(3, 4)
	d.Set(1, 2, 5)
	if d.At(1, 2) != 5 {
		t.Fatal("Set/At mismatch")
	}
	if len(d.Row(1)) != 4 || d.Row(1)[2] != 5 {
		t.Fatal("Row aliasing broken")
	}
	c := d.Clone()
	c.Set(1, 2, 7)
	if d.At(1, 2) != 5 {
		t.Fatal("Clone not deep")
	}
	d.Fill(2)
	if d.At(0, 0) != 2 {
		t.Fatal("Fill failed")
	}
	d.Zero()
	if d.At(2, 3) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{1, 2, 3.00001})
	if a.Equal(b) {
		t.Fatal("Equal should be exact")
	}
	if !a.AllClose(b, 1e-5, 1e-5) {
		t.Fatal("AllClose should tolerate tiny diff")
	}
	c := FromSlice(3, 1, []float32{1, 2, 3})
	if a.Equal(c) || a.AllClose(c, 1, 1) {
		t.Fatal("shape mismatch must not compare equal")
	}
	nan := float32(math.NaN())
	d := FromSlice(1, 1, []float32{nan})
	e := FromSlice(1, 1, []float32{nan})
	if !d.Equal(e) || !d.AllClose(e, 0, 0) {
		t.Fatal("NaN should compare equal to NaN in both comparisons")
	}
}

func TestMaxDiff(t *testing.T) {
	a := FromSlice(1, 2, []float32{0, 10})
	b := FromSlice(1, 2, []float32{1, 7})
	if got := a.MaxDiff(b); got != 3 {
		t.Fatalf("MaxDiff = %v, want 3", got)
	}
	if a.MaxDiff(NewDense(2, 2)) != -1 {
		t.Fatal("shape mismatch should return -1")
	}
}

func TestTypedValidate(t *testing.T) {
	v := NewDense(5, 8)
	e := NewDense(12, 8)
	if err := Src(v).Validate(5, 12, 8); err != nil {
		t.Errorf("Src valid: %v", err)
	}
	if err := Edge(e).Validate(5, 12, 8); err != nil {
		t.Errorf("Edge valid: %v", err)
	}
	if err := NullTensor.Validate(5, 12, 8); err != nil {
		t.Errorf("Null valid: %v", err)
	}
	if err := Src(e).Validate(5, 12, 8); err == nil {
		t.Error("wrong row count should fail")
	}
	if err := Src(v).Validate(5, 12, 4); err == nil {
		t.Error("wrong col count should fail")
	}
	if err := (Typed{Kind: SrcV}).Validate(5, 12, 8); err == nil {
		t.Error("missing data should fail")
	}
	if err := (Typed{Kind: Null, T: v}).Validate(5, 12, 8); err == nil {
		t.Error("null with data should fail")
	}
}

func naiveMatMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a, b := NewDense(m, k), NewDense(k, n)
		a.FillRandom(rng, 1)
		b.FillRandom(rng, 1)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("trial %d: matmul mismatch, maxdiff %v", trial, got.MaxDiff(want))
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewDense(2, 3), NewDense(4, 2))
}

func TestActivationsAndBias(t *testing.T) {
	d := FromSlice(1, 4, []float32{-2, -0.5, 0, 3})
	LeakyReLU(d, 0.1)
	want := []float32{-0.2, -0.05, 0, 3}
	for i, w := range want {
		if math.Abs(float64(d.Data[i]-w)) > 1e-6 {
			t.Fatalf("LeakyReLU[%d] = %v, want %v", i, d.Data[i], w)
		}
	}
	ReLU(d)
	if d.Data[0] != 0 || d.Data[3] != 3 {
		t.Fatal("ReLU wrong")
	}
	AddBias(d, []float32{1, 1, 1, 1})
	if d.Data[0] != 1 || d.Data[3] != 4 {
		t.Fatal("AddBias wrong")
	}
	Scale(d, 2)
	if d.Data[3] != 8 {
		t.Fatal("Scale wrong")
	}
}

func TestExpAddConcatRowSumDivRows(t *testing.T) {
	a := FromSlice(2, 2, []float32{0, 1, 2, 3})
	b := FromSlice(2, 2, []float32{1, 1, 1, 1})
	s := Add(a, b)
	if s.At(1, 1) != 4 {
		t.Fatal("Add wrong")
	}
	e := a.Clone()
	Exp(e)
	if math.Abs(float64(e.At(0, 1))-math.E) > 1e-5 {
		t.Fatal("Exp wrong")
	}
	c := Concat(a, b)
	if c.Cols != 4 || c.At(0, 2) != 1 || c.At(1, 1) != 3 {
		t.Fatal("Concat wrong")
	}
	rs := RowSum(a)
	if rs.Data[0] != 1 || rs.Data[1] != 5 {
		t.Fatal("RowSum wrong")
	}
	d := a.Clone()
	DivRows(d, FromSlice(2, 1, []float32{2, 0}))
	if d.At(0, 1) != 0.5 {
		t.Fatal("DivRows scaling wrong")
	}
	if d.At(1, 0) != 0 || d.At(1, 1) != 0 {
		t.Fatal("DivRows zero-denominator row should zero out")
	}
}

// Property: matmul distributes over addition: (a+b)@c == a@c + b@c.
func TestQuickMatMulLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a, b, c := NewDense(m, k), NewDense(m, k), NewDense(k, n)
		a.FillRandom(r, 1)
		b.FillRandom(r, 1)
		c.FillRandom(r, 1)
		lhs := MatMul(Add(a, b), c)
		rhs := Add(MatMul(a, c), MatMul(b, c))
		return lhs.AllClose(rhs, 1e-4, 1e-3)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGEMMFlops(t *testing.T) {
	if GEMMFlops(10, 20, 30) != 12000 {
		t.Fatal("GEMMFlops wrong")
	}
}
