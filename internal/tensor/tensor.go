// Package tensor provides the dense float32 tensors that carry vertex and
// edge feature embeddings, plus the dense neural-network operators (GEMM,
// bias, activations) that GNN models interleave with graph operators.
//
// The paper's unified abstraction (Fig. 5) types each tensor as a source
// vertex tensor, destination vertex tensor, edge tensor, or NULL; that typing
// lives here as Kind and drives the addressing rules in internal/core.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind is the graph-semantic type of an embedding tensor, matching the
// tensor_type_list of the paper's Fig. 5.
type Kind uint8

const (
	// Null marks an absent tensor (the operator skips that operand).
	Null Kind = iota
	// SrcV is a vertex tensor addressed by an edge's source vertex.
	SrcV
	// DstV is a vertex tensor addressed by an edge's destination vertex.
	DstV
	// EdgeK is an edge tensor addressed by edge id.
	EdgeK
)

// String returns the paper's spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "Null"
	case SrcV:
		return "Src_V"
	case DstV:
		return "Dst_V"
	case EdgeK:
		return "Edge"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsVertex reports whether the kind addresses a vertex tensor.
func (k Kind) IsVertex() bool { return k == SrcV || k == DstV }

// Dense is a row-major 2-D float32 tensor: Rows feature vectors of width Cols.
// Row r occupies Data[r*Cols : (r+1)*Cols].
type Dense struct {
	Rows, Cols int
	Data       []float32
}

// NewDense allocates a zeroed Rows×Cols tensor. A negative shape is an
// invariant panic: shapes come from model code and validated graph sizes,
// not from raw user input (untrusted sizes are bounds-checked at the
// ReadEdgeList / validateOperands boundary).
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (length rows*cols) as a Dense without copying. The
// length check is an invariant panic: callers pass slices they sized
// themselves (arena views, model buffers), so a mismatch is a bug at the
// call site, not a data condition.
func FromSlice(rows, cols int, data []float32) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// Row returns row r as a slice aliasing the tensor's storage.
func (t *Dense) Row(r int) []float32 { return t.Data[r*t.Cols : (r+1)*t.Cols] }

// At returns element (r, c).
func (t *Dense) At(r, c int) float32 { return t.Data[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Dense) Set(r, c int, v float32) { t.Data[r*t.Cols+c] = v }

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	d := make([]float32, len(t.Data))
	copy(d, t.Data)
	return &Dense{Rows: t.Rows, Cols: t.Cols, Data: d}
}

// Zero resets all elements to 0.
func (t *Dense) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Dense) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// FillRandom fills with uniform values in [-scale, scale) from rng,
// deterministic for a fixed seed.
func (t *Dense) FillRandom(rng *rand.Rand, scale float32) {
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * scale
	}
}

// Equal reports exact element-wise equality of shape and contents.
func (t *Dense) Equal(o *Dense) bool {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] && !(isNaN32(v) && isNaN32(o.Data[i])) {
			return false
		}
	}
	return true
}

// AllClose reports element-wise closeness within absolute tolerance atol and
// relative tolerance rtol, the comparison used to check scheduled executions
// against the reference loop (floating-point reduction order may differ).
func (t *Dense) AllClose(o *Dense, atol, rtol float64) bool {
	return t.MaxDiff(o) >= 0 && t.withinTol(o, atol, rtol)
}

func (t *Dense) withinTol(o *Dense, atol, rtol float64) bool {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		return false
	}
	for i, v := range t.Data {
		a, b := float64(v), float64(o.Data[i])
		if math.IsNaN(a) && math.IsNaN(b) {
			continue
		}
		if math.Abs(a-b) > atol+rtol*math.Max(math.Abs(a), math.Abs(b)) {
			return false
		}
	}
	return true
}

// MaxDiff returns the maximum absolute element difference, or -1 on shape
// mismatch.
func (t *Dense) MaxDiff(o *Dense) float64 {
	if t.Rows != o.Rows || t.Cols != o.Cols {
		return -1
	}
	var maxd float64
	for i, v := range t.Data {
		d := math.Abs(float64(v) - float64(o.Data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

func isNaN32(v float32) bool { return v != v }

// Typed pairs a dense tensor with its graph-semantic kind; it is the operand
// form consumed by the uGrapher API.
type Typed struct {
	Kind Kind
	T    *Dense
}

// NullTensor is the absent operand.
var NullTensor = Typed{Kind: Null}

// Src wraps t as a source-vertex tensor.
func Src(t *Dense) Typed { return Typed{Kind: SrcV, T: t} }

// Dst wraps t as a destination-vertex tensor.
func Dst(t *Dense) Typed { return Typed{Kind: DstV, T: t} }

// Edge wraps t as an edge tensor.
func Edge(t *Dense) Typed { return Typed{Kind: EdgeK, T: t} }

// Validate checks that a typed operand of feature width wantCols is
// consistent with a graph of numVertices/numEdges.
func (ty Typed) Validate(numVertices, numEdges, wantCols int) error {
	if ty.Kind == Null {
		if ty.T != nil {
			return fmt.Errorf("tensor: NULL operand must carry no data")
		}
		return nil
	}
	if ty.T == nil {
		return fmt.Errorf("tensor: %s operand missing data", ty.Kind)
	}
	wantRows := numVertices
	if ty.Kind == EdgeK {
		wantRows = numEdges
	}
	if ty.T.Rows != wantRows {
		return fmt.Errorf("tensor: %s operand has %d rows, want %d", ty.Kind, ty.T.Rows, wantRows)
	}
	if wantCols > 0 && ty.T.Cols != wantCols {
		return fmt.Errorf("tensor: %s operand has %d cols, want %d", ty.Kind, ty.T.Cols, wantCols)
	}
	return nil
}
