package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property: the blocked path must agree with the naive loop — and since the
// accumulation order is identical by construction, agree exactly — across
// odd shapes, transposed shape pairs, and the feature widths models use.
func TestGemmPackedMatchesNaive(t *testing.T) {
	shapes := [][3]int{ // {m, k, n}
		{1, 1, 1},
		{7, 13, 5}, {5, 13, 7}, // transposed pair
		{9, 3, 1}, {1, 3, 9}, // transposed pair, width-1 output
		{33, 17, 3}, {3, 17, 33},
		{64, 32, 32}, {50, 7, 8}, {8, 8, 128},
		{21, 128, 64}, {10, 16, 256},
		{11, 5, 8}, {12, 8, 9}, // exact panel and panel+1
	}
	rng := rand.New(rand.NewSource(7))
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a := NewDense(m, k)
			b := NewDense(k, n)
			a.FillRandom(rng, 1)
			b.FillRandom(rng, 1)
			// Sprinkle zeros so the zero-skip path is exercised.
			for i := 0; i < len(a.Data); i += 3 {
				a.Data[i] = 0
			}
			want := NewDense(m, n)
			MatMulInto(want, a, b)
			got := NewDense(m, n)
			GemmPackedInto(got, a, PackB(b))
			if !got.Equal(want) {
				t.Fatalf("blocked GEMM diverges from naive: max diff %g (want bit-identical)", got.MaxDiff(want))
			}
			if !got.AllClose(want, 1e-4, 1e-4) {
				t.Fatalf("blocked GEMM outside 1e-4 of naive: max diff %g", got.MaxDiff(want))
			}
		})
	}
}

// The model-relevant feature widths from the acceptance list, pinned
// explicitly: 1 (attention scalars), 3 (classes), 32 (GIN hidden), 128
// (fat embeddings).
func TestGemmPackedFeatureWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 32, 128} {
		a := NewDense(37, 19)
		b := NewDense(19, n)
		a.FillRandom(rng, 1)
		b.FillRandom(rng, 1)
		want := NewDense(37, n)
		MatMulInto(want, a, b)
		got := NewDense(37, n)
		GemmPackedInto(got, a, PackB(b))
		if !got.Equal(want) {
			t.Fatalf("width %d: blocked GEMM diverges, max diff %g", n, got.MaxDiff(want))
		}
	}
}

func TestPackBShapes(t *testing.T) {
	b := NewDense(5, 11) // two panels: 8 + 3 (padded)
	for i := range b.Data {
		b.Data[i] = float32(i)
	}
	pb := PackB(b)
	if pb.K != 5 || pb.N != 11 {
		t.Fatalf("packed dims %dx%d, want 5x11", pb.K, pb.N)
	}
	if got, want := pb.PackedFloats(), 2*5*8; got != want {
		t.Fatalf("packed floats %d, want %d", got, want)
	}
	// Panel 0, k=2 must hold b[2][0..7]; panel 1, k=2 holds b[2][8..10] + 0s.
	for j := 0; j < 8; j++ {
		if pb.panels[2*8+j] != b.At(2, j) {
			t.Fatalf("panel 0 k=2 lane %d = %g, want %g", j, pb.panels[2*8+j], b.At(2, j))
		}
	}
	base := 5 * 8 // panel 1
	for j := 0; j < 3; j++ {
		if pb.panels[base+2*8+j] != b.At(2, 8+j) {
			t.Fatalf("panel 1 k=2 lane %d mismatch", j)
		}
	}
	for j := 3; j < 8; j++ {
		if pb.panels[base+2*8+j] != 0 {
			t.Fatalf("panel 1 padding lane %d = %g, want 0", j, pb.panels[base+2*8+j])
		}
	}
}

func TestGemmPackedShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	a := NewDense(3, 4)
	b := NewDense(5, 6) // K mismatch
	GemmPackedInto(NewDense(3, 6), a, PackB(b))
}

// BenchmarkGemm compares the naive row loop against the packed-panel kernel
// on the GEMM shapes the models actually run: Sage's wide hidden transform
// and GCN's narrower layers. Run via `make bench-fusion`.
func BenchmarkGemm(b *testing.B) {
	shapes := [][3]int{
		{4096, 256, 256}, // Sage hidden x hidden
		{4096, 512, 256}, // Sage concat input
		{4096, 64, 16},   // GCN-ish narrow layer
	}
	rng := rand.New(rand.NewSource(3))
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := NewDense(m, k)
		w := NewDense(k, n)
		a.FillRandom(rng, 1)
		w.FillRandom(rng, 1)
		out := NewDense(m, n)
		b.Run(fmt.Sprintf("naive/%dx%dx%d", m, k, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulInto(out, a, w)
			}
		})
		pb := PackB(w)
		b.Run(fmt.Sprintf("blocked/%dx%dx%d", m, k, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				GemmPackedInto(out, a, pb)
			}
		})
	}
}
