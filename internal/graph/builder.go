package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Builder accumulates edges and produces an immutable Graph. It is the
// mutable companion to Graph for code that discovers edges incrementally
// (generators, file loaders).
type Builder struct {
	numVertices int
	src, dst    []int32
}

// NewBuilder returns a Builder for a graph with numVertices vertices.
func NewBuilder(numVertices int) *Builder {
	return &Builder{numVertices: numVertices}
}

// AddEdge appends a directed edge src->dst; its edge id is the insertion index.
func (b *Builder) AddEdge(src, dst int32) {
	b.src = append(b.src, src)
	b.dst = append(b.dst, dst)
}

// AddUndirected appends both directions of an undirected edge.
func (b *Builder) AddUndirected(u, v int32) {
	b.AddEdge(u, v)
	b.AddEdge(v, u)
}

// NumEdges reports the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.src) }

// Build validates and freezes the accumulated edges into a Graph.
func (b *Builder) Build() (*Graph, error) {
	return FromCOO(b.numVertices, b.src, b.dst)
}

// WriteEdgeList writes the graph as "numVertices numEdges" followed by one
// "src dst" pair per line, a minimal interchange format used by the CLIs.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for e := int32(0); e < g.numEdges; e++ {
		if _, err := fmt.Fprintf(bw, "%d %d\n", g.edgeSrc[e], g.edgeDst[e]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Limits bounds what ReadEdgeList will accept from an untrusted edge-list
// file. A malformed or hostile header/body must not be able to drive huge
// allocations or build a graph that later panics mid-kernel.
type Limits struct {
	// MaxVertices caps the declared vertex count (0 = DefaultLimits').
	MaxVertices int
	// MaxEdges caps the number of edge lines (0 = DefaultLimits').
	MaxEdges int
}

// DefaultLimits are the bounds ReadEdgeList applies when the caller passes
// none: generous for real datasets (the largest in datasets/ is ~1.6M
// edges) while keeping a hostile header from allocating tens of GiB.
var DefaultLimits = Limits{
	MaxVertices: 1 << 28, // 268M vertices
	MaxEdges:    1 << 30, // 1B edges
}

// ReadEdgeList parses the format written by WriteEdgeList under
// DefaultLimits. Lines starting with '#' or '%' are comments.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return ReadEdgeListLimits(r, Limits{})
}

// ReadEdgeListLimits is ReadEdgeList with caller-chosen bounds (zero fields
// fall back to DefaultLimits). All parse errors carry the 1-based line
// number; negative ids, counts beyond the limits, and values overflowing
// int32 are rejected here rather than surfacing later as kernel panics.
func ReadEdgeListLimits(r io.Reader, lim Limits) (*Graph, error) {
	if lim.MaxVertices <= 0 {
		lim.MaxVertices = DefaultLimits.MaxVertices
	}
	if lim.MaxEdges <= 0 {
		lim.MaxEdges = DefaultLimits.MaxEdges
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var header bool
	var n int
	var src, dst []int32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if !header {
			header = true
			if a < 0 || b < 0 {
				return nil, fmt.Errorf("graph: line %d: negative count in header (%d %d)", lineNo, a, b)
			}
			if a > lim.MaxVertices {
				return nil, fmt.Errorf("graph: line %d: %d vertices exceeds limit %d", lineNo, a, lim.MaxVertices)
			}
			if b > lim.MaxEdges {
				return nil, fmt.Errorf("graph: line %d: %d edges exceeds limit %d", lineNo, b, lim.MaxEdges)
			}
			n = a
			// Preallocation trusts the declared edge count only up to a modest
			// bound; a header lying upward costs re-growth, not memory.
			pre := b
			if pre > 1<<20 {
				pre = 1 << 20
			}
			src = make([]int32, 0, pre)
			dst = make([]int32, 0, pre)
			continue
		}
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id (%d %d)", lineNo, a, b)
		}
		if a >= n || b >= n {
			return nil, fmt.Errorf("graph: line %d: vertex id out of range (%d %d, have %d vertices)", lineNo, a, b, n)
		}
		if len(src) >= lim.MaxEdges {
			return nil, fmt.Errorf("graph: line %d: more than %d edges", lineNo, lim.MaxEdges)
		}
		src = append(src, int32(a))
		dst = append(dst, int32(b))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	return FromCOO(n, src, dst)
}

// Relabel returns a new graph where vertex v of g becomes perm[v]. Edge ids
// are preserved (edge i of the result connects perm[src_i]->perm[dst_i]),
// which keeps edge embedding tensors valid across renumbering — the property
// Fig. 19's orthogonality experiment relies on.
func (g *Graph) Relabel(perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != %d vertices", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation (value %d)", p)
		}
		seen[p] = true
	}
	src := make([]int32, g.numEdges)
	dst := make([]int32, g.numEdges)
	for e := int32(0); e < g.numEdges; e++ {
		src[e] = perm[g.edgeSrc[e]]
		dst[e] = perm[g.edgeDst[e]]
	}
	return FromCOO(n, src, dst)
}

// Reverse returns the transposed graph: edge i of the result connects
// dst_i -> src_i, with edge ids preserved. GNN training needs it — the
// backward pass of an aggregation scatters gradients along reversed edges,
// so a transposed traversal reuses the same uGrapher operators.
func (g *Graph) Reverse() *Graph {
	src := make([]int32, g.numEdges)
	dst := make([]int32, g.numEdges)
	for e := int32(0); e < g.numEdges; e++ {
		src[e] = g.edgeDst[e]
		dst[e] = g.edgeSrc[e]
	}
	rg, err := FromCOO(g.NumVertices(), src, dst)
	if err != nil {
		// invariant: endpoints come from an already-validated graph, so
		// FromCOO cannot reject them.
		panic(err)
	}
	return rg
}
