// Package graph provides the sparse graph structures that uGrapher's
// unified operator abstraction traverses.
//
// Graphs are stored in compressed sparse row form twice: once over incoming
// edges (CSC when viewing the adjacency matrix with rows = destinations) and
// once over outgoing edges (CSR). Every edge carries a stable edge id so edge
// embedding tensors can be addressed no matter which traversal order a
// schedule picks. This mirrors the paper's Fig. 4/5 interface:
// dst.get_inedges(), edge.src_v, edge.dst_v.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Edge is a directed edge (Src -> Dst) with a stable identifier.
//
// ID indexes edge embedding tensors: the feature row of this edge is row ID
// regardless of traversal order.
type Edge struct {
	ID  int32
	Src int32
	Dst int32
}

// Graph is an immutable directed graph in dual-CSR form.
//
// The zero value is an empty graph. Use FromEdges or a Builder to construct
// one; the constructors validate and canonicalise the input.
type Graph struct {
	numVertices int32
	numEdges    int32

	// Incoming adjacency: for destination v, the incoming edges are
	// inEdges[inPtr[v]:inPtr[v+1]]; inSrc holds the source vertex of each,
	// aligned with inEdges which holds the edge id.
	inPtr   []int32
	inSrc   []int32
	inEdges []int32

	// Outgoing adjacency, same layout keyed by source vertex.
	outPtr   []int32
	outDst   []int32
	outEdges []int32

	// edgeSrc/edgeDst are indexed by edge id (COO view).
	edgeSrc []int32
	edgeDst []int32
}

// ErrVertexOutOfRange reports an edge endpoint outside [0, NumVertices).
var ErrVertexOutOfRange = errors.New("graph: vertex out of range")

// FromEdges builds a graph with numVertices vertices from the given edge
// list. Edge ids are assigned by position in the slice. Self-loops and
// parallel edges are allowed (real GNN datasets contain both).
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", numVertices)
	}
	n := int32(numVertices)
	g := &Graph{
		numVertices: n,
		numEdges:    int32(len(edges)),
		edgeSrc:     make([]int32, len(edges)),
		edgeDst:     make([]int32, len(edges)),
	}
	for i, e := range edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("%w: edge %d (%d->%d) with %d vertices",
				ErrVertexOutOfRange, i, e.Src, e.Dst, numVertices)
		}
		g.edgeSrc[i] = e.Src
		g.edgeDst[i] = e.Dst
	}
	g.buildIndexes()
	return g, nil
}

// FromCOO builds a graph from parallel src/dst slices; edge i is src[i]->dst[i].
func FromCOO(numVertices int, src, dst []int32) (*Graph, error) {
	if len(src) != len(dst) {
		return nil, fmt.Errorf("graph: src/dst length mismatch %d vs %d", len(src), len(dst))
	}
	edges := make([]Edge, len(src))
	for i := range src {
		edges[i] = Edge{ID: int32(i), Src: src[i], Dst: dst[i]}
	}
	return FromEdges(numVertices, edges)
}

func (g *Graph) buildIndexes() {
	n := g.numVertices
	m := g.numEdges

	g.inPtr = make([]int32, n+1)
	g.outPtr = make([]int32, n+1)
	for i := int32(0); i < m; i++ {
		g.inPtr[g.edgeDst[i]+1]++
		g.outPtr[g.edgeSrc[i]+1]++
	}
	for v := int32(0); v < n; v++ {
		g.inPtr[v+1] += g.inPtr[v]
		g.outPtr[v+1] += g.outPtr[v]
	}

	g.inSrc = make([]int32, m)
	g.inEdges = make([]int32, m)
	g.outDst = make([]int32, m)
	g.outEdges = make([]int32, m)
	inCursor := make([]int32, n)
	outCursor := make([]int32, n)
	for i := int32(0); i < m; i++ {
		d := g.edgeDst[i]
		s := g.edgeSrc[i]
		ip := g.inPtr[d] + inCursor[d]
		g.inSrc[ip] = s
		g.inEdges[ip] = i
		inCursor[d]++
		op := g.outPtr[s] + outCursor[s]
		g.outDst[op] = d
		g.outEdges[op] = i
		outCursor[s]++
	}
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return int(g.numVertices) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return int(g.numEdges) }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v int32) int32 { return g.inPtr[v+1] - g.inPtr[v] }

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v int32) int32 { return g.outPtr[v+1] - g.outPtr[v] }

// InEdges returns, for destination v, the aligned (sources, edge ids) of its
// incoming edges. The returned slices alias internal storage; callers must
// not modify them.
func (g *Graph) InEdges(v int32) (srcs, edgeIDs []int32) {
	lo, hi := g.inPtr[v], g.inPtr[v+1]
	return g.inSrc[lo:hi], g.inEdges[lo:hi]
}

// OutEdges returns, for source v, the aligned (destinations, edge ids) of its
// outgoing edges. The returned slices alias internal storage.
func (g *Graph) OutEdges(v int32) (dsts, edgeIDs []int32) {
	lo, hi := g.outPtr[v], g.outPtr[v+1]
	return g.outDst[lo:hi], g.outEdges[lo:hi]
}

// EdgeEndpoints returns the (src, dst) of edge id e.
func (g *Graph) EdgeEndpoints(e int32) (src, dst int32) {
	return g.edgeSrc[e], g.edgeDst[e]
}

// InPtr exposes the incoming-CSR row pointer (len |V|+1). Read-only.
func (g *Graph) InPtr() []int32 { return g.inPtr }

// InSrcs exposes the incoming-CSR column (source vertex per slot). Read-only.
func (g *Graph) InSrcs() []int32 { return g.inSrc }

// InEdgeIDs exposes the incoming-CSR edge-id column, aligned with InSrcs.
func (g *Graph) InEdgeIDs() []int32 { return g.inEdges }

// EdgeSrcs exposes the COO source array indexed by edge id. Read-only.
func (g *Graph) EdgeSrcs() []int32 { return g.edgeSrc }

// EdgeDsts exposes the COO destination array indexed by edge id. Read-only.
func (g *Graph) EdgeDsts() []int32 { return g.edgeDst }

// Stats summarises the structural properties that drive schedule choice and
// that the paper reports in Table 3.
type Stats struct {
	NumVertices int
	NumEdges    int
	// MeanInDegree is |E|/|V|.
	MeanInDegree float64
	// StdInDegree is the paper's "std of nnz": the standard deviation of
	// per-row non-zero counts of the adjacency matrix (in-degrees).
	StdInDegree float64
	MaxInDegree int32
	// GiniInDegree in [0,1) measures skew; 0 is perfectly balanced.
	GiniInDegree float64
}

// ComputeStats derives structural statistics of g.
func (g *Graph) ComputeStats() Stats {
	n := int(g.numVertices)
	s := Stats{NumVertices: n, NumEdges: int(g.numEdges)}
	if n == 0 {
		return s
	}
	degs := make([]float64, n)
	var sum float64
	var maxDeg int32
	for v := int32(0); v < g.numVertices; v++ {
		d := g.InDegree(v)
		degs[v] = float64(d)
		sum += float64(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := sum / float64(n)
	var varSum float64
	for _, d := range degs {
		varSum += (d - mean) * (d - mean)
	}
	s.MeanInDegree = mean
	s.StdInDegree = math.Sqrt(varSum / float64(n))
	s.MaxInDegree = maxDeg
	s.GiniInDegree = gini(degs)
	return s
}

// gini computes the Gini coefficient of non-negative values.
func gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	var cum, weighted float64
	for i, x := range sorted {
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	n := float64(len(xs))
	return (2*weighted - (n+1)*cum) / (n * cum)
}

// Validate checks internal consistency of the dual-CSR indexes. It is used
// by tests and by dataset generators as a post-condition.
func (g *Graph) Validate() error {
	n, m := g.numVertices, g.numEdges
	if int32(len(g.inPtr)) != n+1 || int32(len(g.outPtr)) != n+1 {
		return errors.New("graph: pointer array length mismatch")
	}
	if g.inPtr[n] != m || g.outPtr[n] != m {
		return errors.New("graph: pointer arrays do not cover all edges")
	}
	// Monotonicity must hold before the per-vertex walks below: InEdges
	// slices inSrc[inPtr[v]:inPtr[v+1]] and would panic on a decreasing or
	// out-of-range pointer pair.
	if g.inPtr[0] != 0 || g.outPtr[0] != 0 {
		return errors.New("graph: pointer arrays do not start at 0")
	}
	for v := int32(0); v < n; v++ {
		if g.inPtr[v+1] < g.inPtr[v] {
			return fmt.Errorf("graph: in-CSR pointer decreases at vertex %d", v)
		}
		if g.outPtr[v+1] < g.outPtr[v] {
			return fmt.Errorf("graph: out-CSR pointer decreases at vertex %d", v)
		}
	}
	if int32(len(g.edgeSrc)) != m || int32(len(g.edgeDst)) != m {
		return errors.New("graph: COO array length mismatch")
	}
	for e := int32(0); e < m; e++ {
		if s, d := g.edgeSrc[e], g.edgeDst[e]; s < 0 || s >= n || d < 0 || d >= n {
			return fmt.Errorf("graph: edge %d endpoint out of range (%d->%d)", e, s, d)
		}
	}
	seen := make([]bool, m)
	for v := int32(0); v < n; v++ {
		srcs, ids := g.InEdges(v)
		for i, e := range ids {
			if e < 0 || e >= m {
				return fmt.Errorf("graph: bad edge id %d at vertex %d", e, v)
			}
			if seen[e] {
				return fmt.Errorf("graph: edge id %d appears twice in in-CSR", e)
			}
			seen[e] = true
			if g.edgeDst[e] != v {
				return fmt.Errorf("graph: edge %d filed under dst %d but COO says %d", e, v, g.edgeDst[e])
			}
			if g.edgeSrc[e] != srcs[i] {
				return fmt.Errorf("graph: edge %d in-CSR src %d != COO src %d", e, srcs[i], g.edgeSrc[e])
			}
		}
	}
	for _, ok := range seen {
		if !ok {
			return errors.New("graph: in-CSR misses an edge")
		}
	}
	seen = make([]bool, m)
	for v := int32(0); v < n; v++ {
		dsts, ids := g.OutEdges(v)
		for i, e := range ids {
			if seen[e] {
				return fmt.Errorf("graph: edge id %d appears twice in out-CSR", e)
			}
			seen[e] = true
			if g.edgeSrc[e] != v || g.edgeDst[e] != dsts[i] {
				return fmt.Errorf("graph: out-CSR entry for edge %d inconsistent", e)
			}
		}
	}
	for _, ok := range seen {
		if !ok {
			return errors.New("graph: out-CSR misses an edge")
		}
	}
	return nil
}
