package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Hardening tests for the untrusted edge-list loader and the Validate
// post-condition: a hostile or corrupt input must fail with a located error,
// never drive a huge allocation or build a graph that panics mid-kernel.

func TestReadEdgeListRejectsNegativeIDs(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"negative header", "-3 2\n0 1\n", "negative count in header"},
		{"negative src", "4 2\n-1 2\n", "negative vertex id"},
		{"negative dst", "4 2\n1 -2\n", "negative vertex id"},
		{"src out of range", "4 1\n4 0\n", "out of range"},
		{"dst out of range", "4 1\n0 9\n", "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("accepted %q", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestReadEdgeListErrorsCarryLineNumbers(t *testing.T) {
	// The bad line is line 5: a header, a comment, a blank line, one good
	// edge, then garbage. Comments and blanks still count toward the
	// physical line number (that is what an editor shows).
	in := "3 2\n# comment\n\n0 1\n1 nope\n"
	_, err := ReadEdgeList(strings.NewReader(in))
	if err == nil {
		t.Fatal("accepted malformed edge line")
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Errorf("error = %v, want it located at line 5", err)
	}
}

func TestReadEdgeListLimits(t *testing.T) {
	lim := Limits{MaxVertices: 100, MaxEdges: 2}
	if _, err := ReadEdgeListLimits(strings.NewReader("101 1\n0 1\n"), lim); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("vertex limit not enforced: %v", err)
	}
	if _, err := ReadEdgeListLimits(strings.NewReader("10 3\n0 1\n"), lim); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("declared edge count over limit not rejected: %v", err)
	}
	// A header that under-declares does not dodge the cap: the third edge
	// line trips it even though the header said 2.
	if _, err := ReadEdgeListLimits(strings.NewReader("10 2\n0 1\n1 2\n2 3\n"), lim); err == nil ||
		!strings.Contains(err.Error(), "more than 2 edges") {
		t.Errorf("body edge cap not enforced: %v", err)
	}
	// Within limits everything still loads.
	g, err := ReadEdgeListLimits(strings.NewReader("10 2\n0 1\n1 2\n"), lim)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 || g.NumEdges() != 2 {
		t.Errorf("graph = %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
}

// TestReadEdgeListLyingHeader: a header declaring a huge edge count must not
// pre-allocate for it — the loader caps the preallocation and grows as lines
// actually arrive. (If this allocated the declared 1<<29 edges the test
// would OOM, so surviving is the assertion.)
func TestReadEdgeListLyingHeader(t *testing.T) {
	in := "4 536870912\n0 1\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want the 2 actually present", g.NumEdges())
	}
}

func TestReadEdgeListRoundTripUnderLimits(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{0, 0, 1}, {1, 1, 2}, {2, 4, 0}, {3, 2, 2}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeListLimits(&buf, Limits{MaxVertices: 5, MaxEdges: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Error("round trip changed the graph")
	}
}

// TestValidateCatchesCorruptIndexes corrupts each invariant of a valid
// graph's dual-CSR indexes in turn and checks Validate reports it (instead
// of a later InEdges slice panic inside a kernel).
func TestValidateCatchesCorruptIndexes(t *testing.T) {
	build := func() *Graph {
		return mustGraph(t, 4, []Edge{{0, 0, 1}, {1, 1, 2}, {2, 2, 3}, {3, 3, 0}, {4, 0, 2}})
	}
	corrupt := []struct {
		name string
		mut  func(g *Graph)
		want string
	}{
		{"in ptr does not start at 0", func(g *Graph) { g.inPtr[0] = 1 }, "start at 0"},
		{"in ptr decreases", func(g *Graph) { g.inPtr[2] = g.inPtr[1] - 1; g.inPtr[1]++ }, "decreases"},
		{"out ptr decreases", func(g *Graph) { g.outPtr[1] = g.outPtr[3] + 1 }, "decreases"},
		{"ptr does not cover edges", func(g *Graph) { g.inPtr[len(g.inPtr)-1]-- }, "cover"},
		{"coo length mismatch", func(g *Graph) { g.edgeSrc = g.edgeSrc[:len(g.edgeSrc)-1] }, "length mismatch"},
		{"endpoint out of range", func(g *Graph) { g.edgeDst[0] = 99 }, "out of range"},
		{"negative endpoint", func(g *Graph) { g.edgeSrc[1] = -1 }, "out of range"},
	}
	for _, c := range corrupt {
		t.Run(c.name, func(t *testing.T) {
			g := build()
			if err := g.Validate(); err != nil {
				t.Fatalf("fresh graph invalid: %v", err)
			}
			c.mut(g)
			err := g.Validate()
			if err == nil {
				t.Fatal("Validate accepted corrupted graph")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want mention of %q", err, c.want)
			}
		})
	}
}
