package graph

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(t, 0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNoEdges(t *testing.T) {
	g := mustGraph(t, 5, nil)
	for v := int32(0); v < 5; v++ {
		if g.InDegree(v) != 0 || g.OutDegree(v) != 0 {
			t.Fatalf("vertex %d has nonzero degree", v)
		}
	}
}

func TestSmallGraphAdjacency(t *testing.T) {
	// 0->1, 0->2, 1->2, 2->0, 2->2 (self loop)
	g := mustGraph(t, 3, []Edge{
		{0, 0, 1}, {1, 0, 2}, {2, 1, 2}, {3, 2, 0}, {4, 2, 2},
	})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.InDegree(2); got != 3 {
		t.Errorf("InDegree(2) = %d, want 3", got)
	}
	if got := g.OutDegree(2); got != 2 {
		t.Errorf("OutDegree(2) = %d, want 2", got)
	}
	srcs, ids := g.InEdges(2)
	if len(srcs) != 3 {
		t.Fatalf("InEdges(2) has %d entries, want 3", len(srcs))
	}
	for i, e := range ids {
		s, d := g.EdgeEndpoints(e)
		if d != 2 || s != srcs[i] {
			t.Errorf("in-edge %d endpoints (%d,%d) inconsistent with srcs[%d]=%d", e, s, d, i, srcs[i])
		}
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 0, 2}}); err == nil {
		t.Fatal("expected error for dst out of range")
	}
	if _, err := FromEdges(2, []Edge{{0, -1, 1}}); err == nil {
		t.Fatal("expected error for negative src")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("expected error for negative vertex count")
	}
}

func TestFromCOOLengthMismatch(t *testing.T) {
	if _, err := FromCOO(3, []int32{0}, []int32{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := mustGraph(t, 2, []Edge{{0, 0, 1}, {1, 0, 1}, {2, 0, 1}})
	if g.InDegree(1) != 3 {
		t.Fatalf("InDegree(1) = %d, want 3 for parallel edges", g.InDegree(1))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	src := make([]int32, m)
	dst := make([]int32, m)
	for i := 0; i < m; i++ {
		src[i] = int32(rng.Intn(n))
		dst[i] = int32(rng.Intn(n))
	}
	g, err := FromCOO(n, src, dst)
	if err != nil {
		panic(err)
	}
	return g
}

// Property: dual-CSR indexes of random graphs always validate, and degree
// sums equal the edge count.
func TestRandomGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(200)
		m := rng.Intn(1000)
		g := randomGraph(rng, n, m)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var inSum, outSum int32
		for v := int32(0); v < int32(n); v++ {
			inSum += g.InDegree(v)
			outSum += g.OutDegree(v)
		}
		if int(inSum) != m || int(outSum) != m {
			t.Fatalf("trial %d: degree sums %d/%d != %d edges", trial, inSum, outSum, m)
		}
	}
}

// Property (testing/quick): for arbitrary edge lists over a small vertex
// set, every edge id appears exactly once in each CSR and endpoints match.
func TestQuickCSRRoundTrip(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 64
		src := make([]int32, len(pairs))
		dst := make([]int32, len(pairs))
		for i, p := range pairs {
			src[i] = int32(p % n)
			dst[i] = int32((p / n) % n)
		}
		g, err := FromCOO(n, src, dst)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	// Star graph: all edges point at vertex 0.
	b := NewBuilder(5)
	for v := int32(1); v < 5; v++ {
		b.AddEdge(v, 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.NumVertices != 5 || s.NumEdges != 4 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.MaxInDegree != 4 {
		t.Errorf("MaxInDegree = %d, want 4", s.MaxInDegree)
	}
	// In-degrees are [4,0,0,0,0]: mean 0.8, variance (4-.8)^2+4*(.8)^2 over 5.
	wantStd := math.Sqrt((3.2*3.2 + 4*0.64) / 5)
	if math.Abs(s.StdInDegree-wantStd) > 1e-9 {
		t.Errorf("StdInDegree = %v, want %v", s.StdInDegree, wantStd)
	}
	if s.GiniInDegree < 0.7 {
		t.Errorf("GiniInDegree = %v, want high skew for star graph", s.GiniInDegree)
	}

	// Regular ring: perfectly balanced.
	b2 := NewBuilder(10)
	for v := int32(0); v < 10; v++ {
		b2.AddEdge(v, (v+1)%10)
	}
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	s2 := g2.ComputeStats()
	if s2.StdInDegree != 0 {
		t.Errorf("ring StdInDegree = %v, want 0", s2.StdInDegree)
	}
	if s2.GiniInDegree != 0 {
		t.Errorf("ring GiniInDegree = %v, want 0", s2.GiniInDegree)
	}
}

func TestGiniEdgeCases(t *testing.T) {
	if g := gini(nil); g != 0 {
		t.Errorf("gini(nil) = %v", g)
	}
	if g := gini([]float64{0, 0, 0}); g != 0 {
		t.Errorf("gini(zeros) = %v", g)
	}
	if g := gini([]float64{5}); g != 0 {
		t.Errorf("gini(single) = %v", g)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 50, 300)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch")
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		s1, d1 := g.EdgeEndpoints(e)
		s2, d2 := g2.EdgeEndpoints(e)
		if s1 != s2 || d1 != d2 {
			t.Fatalf("edge %d mismatch: (%d,%d) vs (%d,%d)", e, s1, d1, s2, d2)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"3\n",
		"3 1\n0 1 2\n",
		"3 1\nx y\n",
	}
	for i, c := range cases {
		if _, err := ReadEdgeList(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# header comment\n2 1\n% another\n0 1\n"
	g, err := ReadEdgeList(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 30, 120)
	perm := rng.Perm(30)
	p := make([]int32, 30)
	for i, v := range perm {
		p[i] = int32(v)
	}
	g2, err := g.Relabel(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge ids preserved: edge e connects the images of the original endpoints.
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		s, d := g.EdgeEndpoints(e)
		s2, d2 := g2.EdgeEndpoints(e)
		if s2 != p[s] || d2 != p[d] {
			t.Fatalf("edge %d not relabelled correctly", e)
		}
	}
	// Degree multiset preserved.
	var sum1, sum2 int32
	for v := int32(0); v < 30; v++ {
		sum1 += g.InDegree(v) * g.InDegree(v)
		sum2 += g2.InDegree(v) * g2.InDegree(v)
	}
	if sum1 != sum2 {
		t.Fatal("degree multiset changed under relabel")
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 0, 1}})
	if _, err := g.Relabel([]int32{0, 1}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := g.Relabel([]int32{0, 0, 1}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if _, err := g.Relabel([]int32{0, 1, 3}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestBuilderUndirected(t *testing.T) {
	b := NewBuilder(4)
	b.AddUndirected(0, 1)
	b.AddUndirected(2, 3)
	if b.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", b.NumEdges())
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.InDegree(0) != 1 || g.OutDegree(0) != 1 {
		t.Fatal("undirected edge should create both directions")
	}
}

func TestReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 40, 200)
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		s, d := g.EdgeEndpoints(e)
		rs, rd := r.EdgeEndpoints(e)
		if rs != d || rd != s {
			t.Fatalf("edge %d not reversed", e)
		}
	}
	// Degrees swap roles.
	for v := int32(0); v < 40; v++ {
		if g.InDegree(v) != r.OutDegree(v) || g.OutDegree(v) != r.InDegree(v) {
			t.Fatalf("vertex %d degrees not swapped", v)
		}
	}
	// Double reverse is the identity (same COO).
	rr := r.Reverse()
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		s, d := g.EdgeEndpoints(e)
		s2, d2 := rr.EdgeEndpoints(e)
		if s != s2 || d != d2 {
			t.Fatal("double reverse changed the graph")
		}
	}
}
