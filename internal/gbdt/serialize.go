package gbdt

import (
	"encoding/json"
	"fmt"
	"io"
)

// Serialisation of fitted models, so a predictor trained once (the paper's
// one-off offline training) can be reused across processes.

type nodeDTO struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int32   `json:"l"`
	Right     int32   `json:"r"`
	Value     float64 `json:"v"`
}

type treeDTO struct {
	Nodes []nodeDTO `json:"nodes"`
}

type modelDTO struct {
	Base  float64   `json:"base"`
	LR    float64   `json:"lr"`
	Trees []treeDTO `json:"trees"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	dto := modelDTO{Base: m.Base, LR: m.LR}
	for _, t := range m.Trees {
		td := treeDTO{Nodes: make([]nodeDTO, len(t.nodes))}
		for i, n := range t.nodes {
			td.Nodes[i] = nodeDTO{Feature: n.feature, Threshold: n.threshold, Left: n.left, Right: n.right, Value: n.value}
		}
		dto.Trees = append(dto.Trees, td)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dto)
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var dto modelDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("gbdt: decode model: %w", err)
	}
	m := &Model{Base: dto.Base, LR: dto.LR}
	for _, td := range dto.Trees {
		t := &Tree{nodes: make([]node, len(td.Nodes))}
		for i, n := range td.Nodes {
			if n.Feature >= 0 {
				if n.Left < 0 || int(n.Left) >= len(td.Nodes) || n.Right < 0 || int(n.Right) >= len(td.Nodes) {
					return nil, fmt.Errorf("gbdt: corrupt tree: child out of range")
				}
			}
			t.nodes[i] = node{feature: n.Feature, threshold: n.Threshold, left: n.Left, right: n.Right, value: n.Value}
		}
		if len(t.nodes) == 0 {
			return nil, fmt.Errorf("gbdt: corrupt tree: empty")
		}
		m.Trees = append(m.Trees, t)
	}
	return m, nil
}
