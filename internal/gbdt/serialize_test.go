package gbdt

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	X, y := makeData(300, func(x []float64) float64 { return 3*x[0] - x[1] }, 2, 21)
	m, err := Fit(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Base != m.Base || m2.LR != m.LR || len(m2.Trees) != len(m.Trees) {
		t.Fatal("model metadata lost")
	}
	for _, probe := range [][]float64{{0, 0}, {1.5, -2}, {-4, 4}} {
		if m.Predict(probe) != m2.Predict(probe) {
			t.Fatalf("prediction differs after round trip at %v", probe)
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := []string{
		"not json at all",
		`{"base":0,"lr":0.1,"trees":[{"nodes":[]}]}`,
		`{"base":0,"lr":0.1,"trees":[{"nodes":[{"f":0,"t":1,"l":99,"r":0,"v":0}]}]}`,
		`{"base":0,"lr":0.1,"trees":[{"nodes":[{"f":0,"t":1,"l":0,"r":-2,"v":0}]}]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail to load", i)
		}
	}
}

func TestLoadLeafOnlyTree(t *testing.T) {
	// A single-leaf tree (feature -1) is valid regardless of child indices.
	m, err := Load(strings.NewReader(
		`{"base":2,"lr":0.5,"trees":[{"nodes":[{"f":-1,"t":0,"l":0,"r":0,"v":6}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{123}); got != 2+0.5*6 {
		t.Fatalf("Predict = %v, want 5", got)
	}
}

func TestSortedImportanceStable(t *testing.T) {
	X, y := makeData(400, func(x []float64) float64 { return x[2] * 5 }, 5, 22)
	m, err := Fit(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	o1 := m.SortedImportance(5)
	o2 := m.SortedImportance(5)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("importance ordering unstable")
		}
	}
	if o1[0] != 2 {
		t.Errorf("dominant feature should rank first, got %v", o1)
	}
}
