package gbdt

import (
	"math"
	"math/rand"
	"testing"
)

func makeData(n int, f func(x []float64) float64, dims int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, dims)
		for j := range row {
			row[j] = rng.Float64()*10 - 5
		}
		X[i] = row
		y[i] = f(row)
	}
	return X, y
}

func TestFitStepFunction(t *testing.T) {
	// A single-feature step function: trees should nail it.
	f := func(x []float64) float64 {
		if x[0] > 1.5 {
			return 10
		}
		return -3
	}
	X, y := makeData(500, f, 3, 1)
	m, err := Fit(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if mse := m.MSE(X, y); mse > 0.5 {
		t.Fatalf("train MSE = %v, want < 0.5", mse)
	}
	Xt, yt := makeData(200, f, 3, 2)
	if mse := m.MSE(Xt, yt); mse > 1.0 {
		t.Fatalf("test MSE = %v, want < 1.0", mse)
	}
}

func TestFitAdditiveFunction(t *testing.T) {
	f := func(x []float64) float64 { return 2*x[0] - 3*x[1] + x[2]*x[2]/5 }
	X, y := makeData(1500, f, 4, 3)
	m, err := Fit(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var varY float64
	for _, v := range y {
		varY += v * v
	}
	varY /= float64(len(y))
	Xt, yt := makeData(400, f, 4, 4)
	mse := m.MSE(Xt, yt)
	if mse > varY*0.15 {
		t.Fatalf("test MSE %v should explain >85%% of variance %v", mse, varY)
	}
}

func TestFitBeatsConstantBaseline(t *testing.T) {
	f := func(x []float64) float64 { return math.Sin(x[0]) * 4 }
	X, y := makeData(800, f, 2, 5)
	m, err := Fit(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var baseMSE float64
	for _, v := range y {
		baseMSE += (v - m.Base) * (v - m.Base)
	}
	baseMSE /= float64(len(y))
	if got := m.MSE(X, y); got > baseMSE/4 {
		t.Fatalf("model MSE %v should be far below constant baseline %v", got, baseMSE)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, DefaultParams()); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, DefaultParams()); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, DefaultParams()); err == nil {
		t.Error("ragged rows should fail")
	}
	p := DefaultParams()
	p.Rounds = 0
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1, 2}, p); err == nil {
		t.Error("zero rounds should fail")
	}
	p = DefaultParams()
	p.LearningRate = 0
	if _, err := Fit([][]float64{{1}, {2}}, []float64{1, 2}, p); err == nil {
		t.Error("zero learning rate should fail")
	}
}

func TestFitDeterministic(t *testing.T) {
	f := func(x []float64) float64 { return x[0] + x[1] }
	X, y := makeData(300, f, 2, 7)
	m1, _ := Fit(X, y, DefaultParams())
	m2, _ := Fit(X, y, DefaultParams())
	probe := []float64{1.234, -2.5}
	if m1.Predict(probe) != m2.Predict(probe) {
		t.Fatal("training must be deterministic")
	}
}

func TestConstantTarget(t *testing.T) {
	X, _ := makeData(100, func(x []float64) float64 { return 0 }, 2, 8)
	y := make([]float64, 100)
	for i := range y {
		y[i] = 7
	}
	m, err := Fit(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0, 0}); math.Abs(got-7) > 1e-9 {
		t.Fatalf("constant target predicted %v, want 7", got)
	}
}

func TestSubsampleStillLearns(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] > 0 {
			return 5
		}
		return -5
	}
	X, y := makeData(600, f, 2, 9)
	p := DefaultParams()
	p.Subsample = 0.5
	m, err := Fit(X, y, p)
	if err != nil {
		t.Fatal(err)
	}
	if mse := m.MSE(X, y); mse > 1 {
		t.Fatalf("subsampled MSE = %v", mse)
	}
}

func TestFeatureImportance(t *testing.T) {
	// Only feature 1 matters; importance must reflect that.
	f := func(x []float64) float64 { return 10 * x[1] }
	X, y := makeData(600, f, 4, 10)
	m, err := Fit(X, y, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance(4)
	for j, v := range imp {
		if j != 1 && v > imp[1]/2 {
			t.Errorf("feature %d importance %v rivals the true feature's %v", j, v, imp[1])
		}
	}
	if order := m.SortedImportance(4); order[0] != 1 {
		t.Errorf("SortedImportance[0] = %d, want 1", order[0])
	}
}

func TestTreeDepthBounded(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[1] }
	X, y := makeData(500, f, 2, 11)
	p := DefaultTreeParams()
	p.MaxDepth = 3
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	tree := fitTree(X, y, idx, p)
	// Depth 3 => at most 2^4 - 1 nodes.
	if tree.NumNodes() > 15 {
		t.Fatalf("tree has %d nodes, exceeds depth bound", tree.NumNodes())
	}
	if tree.NumNodes() < 3 {
		t.Fatalf("tree failed to split at all")
	}
}

func TestMSEEmpty(t *testing.T) {
	m := &Model{}
	if m.MSE(nil, nil) != 0 {
		t.Fatal("empty MSE should be 0")
	}
}
