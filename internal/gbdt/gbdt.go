// Package gbdt implements gradient-boosted regression trees from scratch —
// the stand-in for LightGBM, which the paper trains to predict the optimal
// parallelization strategy (§5.4, Table 7, Fig. 12). Trees are grown greedily
// on variance reduction with histogram-based split finding, and boosted with
// shrinkage on squared-error residuals, the same model family LightGBM
// implements.
package gbdt

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// TreeParams bound the growth of one regression tree.
type TreeParams struct {
	MaxDepth int
	MinLeaf  int // minimum samples per leaf
	MaxBins  int // histogram bins per feature for split finding
	MinGain  float64
}

// DefaultTreeParams mirror typical LightGBM defaults scaled for small
// tabular datasets.
func DefaultTreeParams() TreeParams {
	return TreeParams{MaxDepth: 6, MinLeaf: 4, MaxBins: 64, MinGain: 1e-7}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      int32
	right     int32
	value     float64
}

// Tree is a fitted regression tree.
type Tree struct {
	nodes []node
}

// Predict evaluates the tree on one feature vector.
func (t *Tree) Predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes reports the tree size.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// fitTree grows a tree on the sample set (indices into X/y).
func fitTree(X [][]float64, y []float64, idx []int, p TreeParams) *Tree {
	t := &Tree{}
	t.grow(X, y, idx, 0, p)
	return t
}

func mean(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// grow appends the subtree for idx and returns its node index.
func (t *Tree) grow(X [][]float64, y []float64, idx []int, depth int, p TreeParams) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{feature: -1, value: mean(y, idx)})
	if depth >= p.MaxDepth || len(idx) < 2*p.MinLeaf {
		return self
	}
	feat, thr, gain := bestSplit(X, y, idx, p)
	if feat < 0 || gain < p.MinGain {
		return self
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < p.MinLeaf || len(right) < p.MinLeaf {
		return self
	}
	l := t.grow(X, y, left, depth+1, p)
	r := t.grow(X, y, right, depth+1, p)
	t.nodes[self].feature = feat
	t.nodes[self].threshold = thr
	t.nodes[self].left = l
	t.nodes[self].right = r
	return self
}

// bestSplit finds the (feature, threshold) with maximal variance reduction
// using per-feature histograms.
func bestSplit(X [][]float64, y []float64, idx []int, p TreeParams) (int, float64, float64) {
	if len(idx) == 0 {
		return -1, 0, 0
	}
	numFeatures := len(X[idx[0]])
	var totalSum, totalSq float64
	for _, i := range idx {
		totalSum += y[i]
		totalSq += y[i] * y[i]
	}
	n := float64(len(idx))
	baseImpurity := totalSq - totalSum*totalSum/n

	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	for f := 0; f < numFeatures; f++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := X[i][f]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			continue
		}
		bins := p.MaxBins
		counts := make([]float64, bins)
		sums := make([]float64, bins)
		width := (hi - lo) / float64(bins)
		for _, i := range idx {
			b := int((X[i][f] - lo) / width)
			if b >= bins {
				b = bins - 1
			}
			counts[b]++
			sums[b] += y[i]
		}
		var cn, cs float64
		for b := 0; b < bins-1; b++ {
			cn += counts[b]
			cs += sums[b]
			if cn < float64(p.MinLeaf) || n-cn < float64(p.MinLeaf) {
				continue
			}
			// Variance reduction: sum of squares is constant, so maximise
			// cs^2/cn + (total-cs)^2/(n-cn).
			rhs := totalSum - cs
			gain := cs*cs/cn + rhs*rhs/(n-cn) - totalSum*totalSum/n
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = lo + width*float64(b+1)
			}
		}
	}
	_ = baseImpurity
	return bestFeat, bestThr, bestGain
}

// Params configure the boosted ensemble.
type Params struct {
	Tree         TreeParams
	Rounds       int
	LearningRate float64
	// Subsample in (0,1] rows per round (stochastic gradient boosting);
	// 1 uses all rows.
	Subsample float64
	// Seed drives the deterministic subsampling.
	Seed int64
}

// DefaultParams are sensible defaults for the predictor's dataset sizes.
func DefaultParams() Params {
	return Params{Tree: DefaultTreeParams(), Rounds: 120, LearningRate: 0.08, Subsample: 0.9, Seed: 1}
}

// Model is a fitted boosted ensemble.
type Model struct {
	Base  float64
	Trees []*Tree
	LR    float64
}

// ErrBadTrainingData reports malformed inputs to Fit.
var ErrBadTrainingData = errors.New("gbdt: bad training data")

// Fit trains a squared-error gradient-boosted ensemble.
func Fit(X [][]float64, y []float64, p Params) (*Model, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("%w: %d rows, %d targets", ErrBadTrainingData, len(X), len(y))
	}
	width := len(X[0])
	for i, row := range X {
		if len(row) != width {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrBadTrainingData, i, len(row), width)
		}
	}
	if p.Rounds <= 0 || p.LearningRate <= 0 {
		return nil, fmt.Errorf("%w: rounds=%d lr=%v", ErrBadTrainingData, p.Rounds, p.LearningRate)
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		p.Subsample = 1
	}

	m := &Model{LR: p.LearningRate}
	var s float64
	for _, v := range y {
		s += v
	}
	m.Base = s / float64(len(y))

	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = m.Base
	}
	residual := make([]float64, len(y))
	rng := newXorshift(uint64(p.Seed)*2685821657736338717 + 1)
	for round := 0; round < p.Rounds; round++ {
		for i := range y {
			residual[i] = y[i] - pred[i]
		}
		idx := make([]int, 0, len(y))
		for i := range y {
			if p.Subsample >= 1 || rng.float64() < p.Subsample {
				idx = append(idx, i)
			}
		}
		if len(idx) < 2*p.Tree.MinLeaf {
			idx = idx[:0]
			for i := range y {
				idx = append(idx, i)
			}
		}
		tree := fitTree(X, residual, idx, p.Tree)
		m.Trees = append(m.Trees, tree)
		for i, row := range X {
			pred[i] += p.LearningRate * tree.Predict(row)
		}
	}
	return m, nil
}

// Predict evaluates the ensemble on one feature vector.
func (m *Model) Predict(x []float64) float64 {
	out := m.Base
	for _, t := range m.Trees {
		out += m.LR * t.Predict(x)
	}
	return out
}

// MSE computes mean squared error of the model over a dataset.
func (m *Model) MSE(X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	var s float64
	for i, row := range X {
		d := m.Predict(row) - y[i]
		s += d * d
	}
	return s / float64(len(X))
}

// xorshift is a tiny deterministic PRNG so Fit does not depend on math/rand
// ordering guarantees.
type xorshift struct{ state uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &xorshift{state: seed}
}

func (x *xorshift) next() uint64 {
	s := x.state
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	x.state = s
	return s
}

func (x *xorshift) float64() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// FeatureImportance counts how often each feature is used for splitting,
// weighted by depth (shallower splits matter more). Useful for the
// documentation of what drives schedule choice.
func (m *Model) FeatureImportance(numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	for _, t := range m.Trees {
		var walk func(i int32, depth int)
		walk = func(i int32, depth int) {
			n := &t.nodes[i]
			if n.feature < 0 {
				return
			}
			if n.feature < numFeatures {
				imp[n.feature] += 1 / float64(depth+1)
			}
			walk(n.left, depth+1)
			walk(n.right, depth+1)
		}
		walk(0, 0)
	}
	return imp
}

// SortedImportance returns feature indices ordered by descending importance.
func (m *Model) SortedImportance(numFeatures int) []int {
	imp := m.FeatureImportance(numFeatures)
	order := make([]int, numFeatures)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return imp[order[a]] > imp[order[b]] })
	return order
}
